"""Sensitive-content filtering.

The TA's decision layer (Fig. 1 step 5): the classifier scores the
transcript, and the policy decides what — if anything — the relay may
send.  Three policies, matching what a deployment would actually choose
between:

* ``DROP`` — sensitive utterances are silently discarded.  Maximum
  privacy, the cloud never learns an interaction happened.
* ``REDACT`` — a fixed placeholder is sent, preserving interaction
  timing/telemetry without content.
* ``HASH`` — a salted digest is sent; the provider can deduplicate or
  count without reading content.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import PolicyError
from repro.ml.asr import MatchedFilterAsr, SpeechVocoder
from repro.ml.quantize import QuantizedClassifier
from repro.ml.tokenizer import WordTokenizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.wakeword import WakeWordGate

REDACTED_PLACEHOLDER = "redacted by privacy filter"


class FilterPolicy(enum.Enum):
    """What to do with an utterance classified as sensitive."""

    DROP = "drop"
    REDACT = "redact"
    HASH = "hash"


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of filtering one transcript."""

    transcript: str
    probability: float
    sensitive: bool
    forwarded: bool
    payload: str | None  # what the relay may send (None = nothing)

    @property
    def blocked(self) -> bool:
        """True if the original content was withheld."""
        return self.payload != self.transcript


class SensitiveFilter:
    """Classifier + threshold + policy.

    Accepts either a float :class:`~repro.ml.models.TextClassifier` or a
    :class:`~repro.ml.quantize.QuantizedClassifier`; both expose
    ``predict_proba`` over token ids.
    """

    def __init__(
        self,
        classifier,
        tokenizer: WordTokenizer,
        threshold: float = 0.5,
        policy: FilterPolicy = FilterPolicy.DROP,
    ):
        if not 0.0 < threshold < 1.0:
            raise PolicyError(f"threshold {threshold} must be in (0, 1)")
        self.classifier = classifier
        self.tokenizer = tokenizer
        self.threshold = threshold
        self.policy = policy

    @property
    def is_quantized(self) -> bool:
        """True when running an int8 classifier."""
        return isinstance(self.classifier, QuantizedClassifier)

    def score(self, transcript: str) -> float:
        """Sensitive-class probability for one transcript."""
        ids = self.tokenizer.encode_batch([transcript])
        return float(self.classifier.predict_proba(ids)[0])

    def apply(self, transcript: str) -> FilterDecision:
        """Classify and apply the policy to one transcript."""
        probability = self.score(transcript)
        sensitive = probability >= self.threshold
        if not sensitive:
            return FilterDecision(
                transcript=transcript,
                probability=probability,
                sensitive=False,
                forwarded=True,
                payload=transcript,
            )
        if self.policy is FilterPolicy.DROP:
            payload = None
        elif self.policy is FilterPolicy.REDACT:
            payload = REDACTED_PLACEHOLDER
        else:  # HASH
            digest = hashlib.sha256(b"filter-salt:" + transcript.encode()).hexdigest()
            payload = f"hashed:{digest[:32]}"
        return FilterDecision(
            transcript=transcript,
            probability=probability,
            sensitive=True,
            forwarded=payload is not None,
            payload=payload,
        )


@dataclass
class FilterBundle:
    """Everything the audio-filter TA ships in its image.

    On a real deployment these are baked into the signed TA binary: the
    ASR front end, the tokenizer, the trained classifier, the policy, and
    optionally a wake-word gate (``gate``) that drops accidental captures
    — audio not addressed to the assistant — before content filtering.
    """

    vocoder: SpeechVocoder
    asr: MatchedFilterAsr
    filter: SensitiveFilter
    gate: "WakeWordGate | None" = None

    @property
    def model_size_bytes(self) -> int:
        """Classifier weight footprint (drives the secure-heap check)."""
        return self.classifier_size() + self._asr_size()

    def classifier_size(self) -> int:
        """Classifier-only weight bytes."""
        return int(self.filter.classifier.size_bytes())

    def _asr_size(self) -> int:
        """ASR template bank bytes (float32 templates)."""
        return int(self.asr._matrix.size * 4)

    def inference_macs(self) -> int:
        """Classifier MACs per utterance."""
        return int(self.filter.classifier.macs_per_inference())

    def asr_macs(self, num_samples: int) -> int:
        """ASR decode MACs for ``num_samples`` of PCM."""
        from repro.ml.asr import SAMPLE_RATE

        seconds = num_samples / SAMPLE_RATE
        return int(self.asr.macs_per_second() * max(seconds, 1e-9))
