"""The paper's primary contribution: the secure peripheral-data pipeline.

Fig. 1 as a running system:

1. :class:`~repro.core.platform.IotPlatform` builds the simulated device —
   TrustZone machine, OP-TEE, untrusted kernel, I²S microphone + camera,
   supplicant, cloud endpoint.
2. :class:`~repro.core.pta_audio.SecureAudioPta` hosts the (optionally
   trace-minimized) I²S driver in the secure world, with secure I/O
   buffers and a secured controller MMIO window.
3. The audio-filter TA (built by :func:`~repro.core.ta_filter.make_audio_filter_ta`)
   runs ASR + the sensitive-content classifier and applies a
   :class:`~repro.core.filter.FilterPolicy` before anything leaves the TEE.
4. :class:`~repro.core.pipeline.SecurePipeline` drives the whole path from
   a normal-world client; :class:`~repro.core.baseline.BaselinePipeline`
   is the conventional insecure configuration used as the comparison
   point in every experiment.
"""

from repro.core.audit import SecurityAuditReport, audit_machine
from repro.core.baseline import BaselinePipeline
from repro.core.camera_pipeline import (
    SecureCameraPipeline,
    train_person_detector,
)
from repro.core.model_store import ModelPackage, ModelStore, sign_package
from repro.core.filter import FilterBundle, FilterDecision, FilterPolicy, SensitiveFilter
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.pta_audio import SecureAudioPta
from repro.core.results import PipelineRunResult, UtteranceResult
from repro.core.ta_filter import make_audio_filter_ta
from repro.core.wakeword import WakeWordGate
from repro.core.workload import UtteranceWorkload

__all__ = [
    "BaselinePipeline",
    "ModelPackage",
    "ModelStore",
    "SecurityAuditReport",
    "audit_machine",
    "sign_package",
    "FilterBundle",
    "FilterDecision",
    "FilterPolicy",
    "IotPlatform",
    "PipelineRunResult",
    "SecureAudioPta",
    "SecureCameraPipeline",
    "SecurePipeline",
    "train_person_detector",
    "SensitiveFilter",
    "UtteranceResult",
    "UtteranceWorkload",
    "WakeWordGate",
    "make_audio_filter_ta",
]
