"""Versioned, authenticated model provisioning.

The paper's TA ships "a pre-trained ML classifier"; a deployed fleet also
needs to *update* that model — and a model update path is an attack
surface: a malicious OS could try to install a classifier that never
flags anything, or roll back to an older model with known blind spots.

This module implements the defensive pattern TEEs use for such payloads:

* models are distributed as **vendor-signed packages** (HMAC under a
  vendor key whose verification half is baked into the TA),
* installed packages live in **sealed storage** (the normal world holds
  only ciphertext),
* a monotonic **anti-rollback counter** (itself sealed) rejects
  downgrades.

``ModelPackage`` is the wire format; ``ModelStore`` is the TA-side
install/load logic.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.kdf import hmac_sha256
from repro.errors import AuthenticationFailure, TeeItemNotFound, TeeSecurityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.storage import SecureStorage

_MAGIC = b"RPMDL1"
_STORE_OBJECT = "model-package"
_COUNTER_OBJECT = "model-version-counter"


@dataclass(frozen=True)
class ModelPackage:
    """A signed model distribution unit."""

    architecture: str
    version: int
    weights: bytes
    signature: bytes

    def to_bytes(self) -> bytes:
        """Wire encoding: magic, header JSON, weights, signature."""
        header = json.dumps(
            {"architecture": self.architecture, "version": self.version}
        ).encode()
        return b"".join(
            [
                _MAGIC,
                struct.pack("<I", len(header)),
                header,
                struct.pack("<Q", len(self.weights)),
                self.weights,
                self.signature,
            ]
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ModelPackage":
        """Parse the wire encoding (structure only; verify separately)."""
        if not blob.startswith(_MAGIC):
            raise AuthenticationFailure("not a model package")
        offset = len(_MAGIC)
        (header_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        try:
            header = json.loads(blob[offset : offset + header_len].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise AuthenticationFailure(f"bad package header: {exc}") from exc
        offset += header_len
        (weights_len,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        weights = blob[offset : offset + weights_len]
        if len(weights) != weights_len:
            raise AuthenticationFailure("truncated model package")
        signature = blob[offset + weights_len :]
        return cls(
            architecture=str(header["architecture"]),
            version=int(header["version"]),
            weights=weights,
            signature=signature,
        )

    def signed_payload(self) -> bytes:
        """The bytes the vendor signature covers."""
        return (
            _MAGIC
            + self.architecture.encode()
            + struct.pack("<Q", self.version)
            + self.weights
        )


def sign_package(
    architecture: str, version: int, weights: bytes, vendor_key: bytes
) -> ModelPackage:
    """Vendor side: build and sign a package."""
    unsigned = ModelPackage(
        architecture=architecture, version=version, weights=weights,
        signature=b"",
    )
    signature = hmac_sha256(vendor_key, unsigned.signed_payload())
    return ModelPackage(
        architecture=architecture, version=version, weights=weights,
        signature=signature,
    )


class ModelStore:
    """TA-side model install/load with signature + anti-rollback checks."""

    def __init__(self, storage: "SecureStorage", vendor_key: bytes):
        self._storage = storage
        self._vendor_key = vendor_key

    # -- anti-rollback counter -------------------------------------------------

    def installed_version(self) -> int:
        """Highest version ever installed (0 if none)."""
        try:
            raw = self._storage.get(_COUNTER_OBJECT)
        except TeeItemNotFound:
            return 0
        return struct.unpack("<Q", raw)[0]

    def _bump_version(self, version: int) -> None:
        self._storage.put(_COUNTER_OBJECT, struct.pack("<Q", version))

    # -- verification ------------------------------------------------------------

    def verify(self, package: ModelPackage) -> None:
        """Check the vendor signature; raises on forgery."""
        expect = hmac_sha256(self._vendor_key, package.signed_payload())
        import hmac as _hmac

        if not _hmac.compare_digest(expect, package.signature):
            raise AuthenticationFailure("model package signature invalid")

    # -- install / load --------------------------------------------------------------

    def install(self, blob: bytes) -> ModelPackage:
        """Verify and persist a model package received from outside.

        Rejects forged signatures and version rollbacks; on success the
        package is sealed into secure storage and the anti-rollback
        counter advances.
        """
        package = ModelPackage.from_bytes(blob)
        self.verify(package)
        current = self.installed_version()
        if package.version <= current:
            raise TeeSecurityError(
                f"model rollback rejected: version {package.version} <= "
                f"installed {current}"
            )
        self._storage.put(_STORE_OBJECT, blob)
        self._bump_version(package.version)
        return package

    def load(self) -> ModelPackage:
        """Load and re-verify the installed package.

        Re-verification matters: sealed storage already authenticates the
        blob at rest, but re-checking the vendor signature keeps the trust
        chain anchored in the vendor key rather than the device key.
        """
        blob = self._storage.get(_STORE_OBJECT)
        package = ModelPackage.from_bytes(blob)
        self.verify(package)
        if package.version != self.installed_version():
            raise TeeSecurityError(
                "installed package version disagrees with rollback counter"
            )
        return package
