"""Utterance workloads: labelled text plus rendered PCM.

A workload item is what the microphone will 'hear': the ground-truth
:class:`~repro.ml.dataset.Utterance` and its vocoder-rendered PCM.  Both
pipelines consume the same workload, so privacy and performance
comparisons share identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.asr import SpeechVocoder
from repro.ml.dataset import Corpus, Utterance


@dataclass(frozen=True)
class WorkloadItem:
    """One utterance ready for playback into the mic."""

    utterance: Utterance
    pcm: np.ndarray

    @property
    def frames(self) -> int:
        """PCM sample count."""
        return len(self.pcm)


@dataclass
class UtteranceWorkload:
    """An ordered utterance stream with rendered audio."""

    items: list[WorkloadItem]

    @classmethod
    def from_corpus(cls, corpus: Corpus, vocoder: SpeechVocoder) -> "UtteranceWorkload":
        """Render every corpus utterance through the vocoder."""
        items = [
            WorkloadItem(utterance=u, pcm=vocoder.render(u.text))
            for u in corpus.utterances
        ]
        return cls(items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def utterances(self) -> list[Utterance]:
        """Ground truth for the auditor."""
        return [i.utterance for i in self.items]

    @property
    def total_frames(self) -> int:
        """Total audio volume in samples."""
        return sum(i.frames for i in self.items)

    @property
    def max_frames(self) -> int:
        """Longest item (sizing for reusable buffers)."""
        return max((i.frames for i in self.items), default=0)
