"""The camera branch of the design (paper research plan, item 6).

Generalizes the secure pipeline "to a larger and more generic set of
peripherals and data": the camera driver runs in the secure world behind
:class:`SecureCameraPta`, and a guard TA classifies each frame in-enclave,
releasing only frames without sensitive content (here: no person present)
— the image analogue of the audio filter, per paper §IV-4's note that
"for an image analysis based system, a pre-trained ML classifier alone
will be sufficient."

``SecureCameraPipeline`` mirrors :class:`~repro.core.pipeline.SecurePipeline`:
install PTA + TA, open a GP session, drive frames through, and measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.platform import IotPlatform
from repro.drivers.camera_driver import CameraDriver
from repro.drivers.hosting import SecureDriverHost
from repro.ml.image import ImageClassifier
from repro.optee.client import TeeClient
from repro.optee.params import Params
from repro.optee.pta import PseudoTa
from repro.optee.ta import TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.peripherals.camera import Camera

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.session import Session

CMD_GRAB_AND_GUARD = 1
CMD_GUARD_STATS = 2
CMD_GRAB_AND_GUARD_BLOCK = 3

PTA_CMD_INIT = 1
PTA_CMD_CAPTURE = 2
PTA_CMD_CAPTURE_BLOCK = 3


class SecureCameraPta(PseudoTa):
    """Hosts the camera driver in the secure world."""

    NAME = "pta.secure-camera"

    def __init__(self, camera: Camera):
        super().__init__()
        self._camera = camera
        self.driver: CameraDriver | None = None

    def on_invoke(self, cmd: int, payload: Any, caller) -> Any:
        """``INIT`` (idempotent) and ``CAPTURE`` (TA callers only)."""
        if cmd == PTA_CMD_INIT:
            self._init()
            return None
        self.require_caller(caller)
        if self.driver is None:
            self._init()
        if cmd == PTA_CMD_CAPTURE:
            assert self.driver is not None
            return self.driver.capture_frame()
        if cmd == PTA_CMD_CAPTURE_BLOCK:
            assert self.driver is not None
            return self.driver.capture_frames(int(payload["frames"]))
        raise AssertionError(f"secure camera PTA: unknown command {cmd}")

    def _init(self) -> None:
        if self.driver is not None:
            return
        assert self.ctx is not None, "PTA not registered"
        host = SecureDriverHost(self.ctx)
        self.driver = CameraDriver(host, self._camera)
        self.driver.probe()
        self.driver.stream_on()
        self.ctx.log("camera_ready")


def make_camera_guard_ta(
    classifier: ImageClassifier,
    pta_uuid: TaUuid,
    threshold: float = 0.5,
) -> type[TrustedApplication]:
    """Build the guard TA with the detector baked into its image."""

    class CameraGuardTa(TrustedApplication):
        """Blocks frames in which the detector sees a person."""

        NAME = "ta.camera-guard"
        FLAGS = TaFlags.SINGLE_INSTANCE | TaFlags.MULTI_SESSION

        def __init__(self) -> None:
            super().__init__()
            self.blocked = 0
            self.released = 0

        def on_create(self, ctx) -> None:
            ctx.alloc(classifier.size_bytes())

        def on_invoke(self, session: "Session", cmd: int, params: Params) -> Any:
            if cmd == CMD_GUARD_STATS:
                return {"blocked": self.blocked, "released": self.released}
            if cmd == CMD_GRAB_AND_GUARD_BLOCK:
                return self._guard_block(max(1, params.value(0).a))
            if cmd != CMD_GRAB_AND_GUARD:
                return super().on_invoke(session, cmd, params)
            assert self.ctx is not None
            frame = self.ctx.invoke_pta(pta_uuid, PTA_CMD_CAPTURE, None)
            self._charge_inference(1)
            probability = float(classifier.predict_proba(frame)[0])
            return self._verdict(frame, probability)

        def _charge_inference(self, n_frames: int) -> None:
            assert self.ctx is not None
            costs = self.ctx._os.machine.costs
            self.ctx.compute(
                n_frames
                * costs.ml_inference_cycles(
                    classifier.macs_per_inference(), secure=True, int8=False
                )
            )

        def _verdict(self, frame: np.ndarray, probability: float) -> dict:
            if probability >= threshold:
                self.blocked += 1
                return {"released": False, "probability": probability}
            self.released += 1
            # The released artifact is a privacy-preserving digest of the
            # frame, not the pixels — only this leaves the TEE.
            return {
                "released": True,
                "probability": probability,
                "brightness": float(frame.mean()),
            }

        def _guard_block(self, n_frames: int) -> list[dict]:
            """Capture + classify ``n_frames`` in one enclave round trip.

            One PTA block capture and one batched classifier forward pass
            replace ``n_frames`` individual command invocations — this is
            where the camera path's world-switch count drops.
            """
            assert self.ctx is not None
            block = self.ctx.invoke_pta(
                pta_uuid, PTA_CMD_CAPTURE_BLOCK, {"frames": n_frames}
            )
            self._charge_inference(n_frames)
            probabilities = classifier.predict_proba(block)
            return [
                self._verdict(frame, float(probability))
                for frame, probability in zip(block, probabilities)
            ]

    return CameraGuardTa


@dataclass
class FrameResult:
    """Outcome of one guarded frame."""

    released: bool
    probability: float
    scene_label: str | None
    latency_cycles: int


@dataclass
class CameraRunResult:
    """Aggregate outcome of a guarded capture session."""

    frames: list[FrameResult] = field(default_factory=list)

    @property
    def released(self) -> int:
        """Frames whose digest left the TEE."""
        return sum(1 for f in self.frames if f.released)

    @property
    def blocked(self) -> int:
        """Frames withheld."""
        return len(self.frames) - self.released

    def accuracy(self) -> float:
        """Guard decision vs scene ground truth (when labels available)."""
        labelled = [f for f in self.frames if f.scene_label is not None]
        if not labelled:
            return 0.0
        correct = sum(
            1
            for f in labelled
            if (f.scene_label == "person") == (not f.released)
        )
        return correct / len(labelled)


class SecureCameraPipeline:
    """The image branch, assembled and runnable."""

    name = "secure-camera"

    def __init__(
        self,
        platform: IotPlatform,
        classifier: ImageClassifier,
        threshold: float = 0.5,
    ):
        self.platform = platform
        self.pta = SecureCameraPta(platform.camera)
        platform.tee.register_pta(self.pta)
        ta_class = make_camera_guard_ta(classifier, self.pta.uuid, threshold)
        self.ta_uuid = platform.tee.install_ta(ta_class)
        self.client = TeeClient(platform.machine)
        self.session = self.client.open_session(self.ta_uuid)

    def guard_frame(self) -> FrameResult:
        """Capture + classify + gate one frame."""
        clock = self.platform.machine.clock
        before = clock.now
        verdict = self.session.invoke(CMD_GRAB_AND_GUARD)
        scene = getattr(self.platform.camera.scene, "last_label", None)
        return FrameResult(
            released=verdict["released"],
            probability=verdict["probability"],
            scene_label=scene,
            latency_cycles=clock.now - before,
        )

    def run(self, frames: int) -> CameraRunResult:
        """Guard a stream of ``frames`` captures (one invoke per frame)."""
        result = CameraRunResult()
        for _ in range(frames):
            result.frames.append(self.guard_frame())
        return result

    def run_block(self, frames: int, block: int = 8) -> CameraRunResult:
        """Guard ``frames`` captures in blocks of up to ``block``.

        Each block costs one GP command round trip (two world switches)
        instead of one per frame — the same verdicts, ``~block×`` fewer
        crossings.  Per-frame scene labels are not observable from a
        block invoke (only the final frame's label survives the batch),
        so results carry ``scene_label=None``.
        """
        from repro.optee.params import Params, Value

        clock = self.platform.machine.clock
        result = CameraRunResult()
        remaining = frames
        while remaining > 0:
            n = min(block, remaining)
            before = clock.now
            verdicts = self.session.invoke(
                CMD_GRAB_AND_GUARD_BLOCK, Params([Value(a=n)])
            )
            per_frame = (clock.now - before) // max(1, len(verdicts))
            result.frames.extend(
                FrameResult(
                    released=v["released"],
                    probability=v["probability"],
                    scene_label=None,
                    latency_cycles=per_frame,
                )
                for v in verdicts
            )
            remaining -= n
        return result

    def stats(self) -> dict[str, int]:
        """TA-side counters."""
        return self.session.invoke(CMD_GUARD_STATS)

    def close(self) -> None:
        """Close the session and release client resources."""
        self.session.close()
        self.client.close()


def train_person_detector(
    seed: int = 3, frames_per_class: int = 80, epochs: int = 10
) -> ImageClassifier:
    """Train the guard's detector on labelled synthetic scenes."""
    from repro.peripherals.camera import SyntheticScene
    from repro.sim.rng import SimRng

    images, labels = [], []
    for prob, label in ((1.0, 1), (0.0, 0)):
        scene = SyntheticScene(SimRng(seed + label, "scenes"),
                               person_probability=prob)
        camera = Camera(scene)
        for _ in range(frames_per_class):
            images.append(camera.capture_frame())
            labels.append(label)
    classifier = ImageClassifier(
        32, 24, SimRng.compat(seed, "camera/detector-init").generator
    )
    classifier.fit(np.stack(images), np.array(labels), epochs=epochs)
    return classifier
