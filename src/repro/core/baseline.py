"""The baseline pipeline: today's conventional smart-speaker stack.

The comparison point for every experiment: the I²S driver lives in the
untrusted kernel with I/O buffers in normal DRAM, the application
assembles the utterance in normal-world memory, ASR runs in the normal
world, *no sensitive-content filtering happens*, and the transcript goes
to the cloud — over TLS by default (real assistants do encrypt in
transit; the leak the paper targets is to the *provider* and to a
*compromised OS*, both of which TLS does not help), or in plaintext with
``use_tls=False`` for the wire-eavesdropping variant.

An optional ``bundle`` enables a *normal-world filtering* ablation: same
classifier, but running where a compromised OS can disable or bypass it —
useful to show the performance cost of filtering separately from the cost
of the TEE.
"""

from __future__ import annotations

from typing import Callable

from repro.core.filter import FilterBundle
from repro.core.platform import IotPlatform
from repro.core.results import PipelineRunResult, UtteranceResult
from repro.core.workload import UtteranceWorkload, WorkloadItem
from repro.drivers.i2s_driver import I2sDriver
from repro.kernel.kernel import I2sCharDevice
from repro.ml.asr import MatchedFilterAsr
from repro.peripherals.audio import BufferSource
from repro.relay.avs import AvsClient, AvsEvent
from repro.relay.tls import TlsClient
from repro.tz.worlds import World

DEVICE_PATH = "/dev/snd/i2s0"


class BaselinePipeline:
    """Driver in the kernel, processing in the normal world, no TEE."""

    name = "baseline"

    def __init__(
        self,
        platform: IotPlatform,
        asr: MatchedFilterAsr,
        bundle: FilterBundle | None = None,
        use_tls: bool = True,
        chunk_frames: int = 256,
    ):
        self.platform = platform
        self.asr = asr
        self.bundle = bundle
        self.use_tls = use_tls
        self.chunk_frames = chunk_frames
        if bundle is not None:
            self.name = "baseline+nw-filter"

        kernel = platform.kernel
        self.driver = I2sDriver(
            kernel.driver_host, platform.i2s_controller, platform.i2s_region
        )
        kernel.register_device(DEVICE_PATH, I2sCharDevice(self.driver))
        # The kernel owns the mic interrupt in this configuration.
        from repro.tz.interrupts import IRQ_I2S

        platform.machine.gic.configure(
            IRQ_I2S, World.NORMAL, self._kernel_irq_handler
        )

        # The application's utterance buffer, in normal DRAM for all to see.
        self._app_buf_addr: int | None = None
        self._app_buf_size = 0

        machine = platform.machine
        if use_tls:
            self._tls = TlsClient(
                self._transport,
                platform.cloud.tls.static_public,
                platform.rng.fork("baseline-tls"),
            )
            self._avs = AvsClient(self._tls.request)
        else:
            self._tls = None
            self._avs = AvsClient(self._plaintext_request)
        self._machine = machine

    def _kernel_irq_handler(self) -> None:
        """Kernel-side mic interrupt: service the driver's condition."""
        if self.driver.state in ("capturing", "duplex"):
            self.driver.irq_handler()

    # -- transport (normal world straight to the NIC) ---------------------------

    def _charge_net(self, nbytes: int) -> None:
        costs = self._machine.costs
        self._machine.cpu.execute(int(nbytes * costs.network_cycles_per_byte))

    def _transport(self, payload: bytes) -> bytes:
        costs = self._machine.costs
        self._machine.cpu.execute(int(len(payload) * costs.crypto_cycles_per_byte))
        self._charge_net(len(payload))
        return bytes(
            self.platform.supplicant.net.call(
                "send", self.platform.cloud.HOST,
                self.platform.cloud.TLS_PORT, payload,
            )
        )

    def _plaintext_request(self, payload: bytes) -> bytes:
        self._charge_net(len(payload))
        return bytes(
            self.platform.supplicant.net.call(
                "send", self.platform.cloud.HOST,
                self.platform.cloud.PLAINTEXT_PORT, payload,
            )
        )

    def _connect(self) -> None:
        if self._tls is not None and not self._tls.connected:
            with self._machine.obs.span("tls_handshake",
                                        category="stage.baseline"):
                self._machine.cpu.execute(self._machine.costs.handshake_cycles)
                self._tls.handshake()

    # -- app-side buffer (the leak surface) ----------------------------------------

    def _land_utterance(self, raw: bytes) -> None:
        machine = self._machine
        if self._app_buf_addr is None or len(raw) > self._app_buf_size:
            if self._app_buf_addr is not None:
                machine.ns_allocator.free(self._app_buf_addr)
            self._app_buf_addr = machine.ns_allocator.alloc(len(raw))
            self._app_buf_size = len(raw)
        machine.memory.write(self._app_buf_addr, raw, World.NORMAL)

    # -- execution ------------------------------------------------------------------

    def process_item(self, item: WorkloadItem) -> UtteranceResult:
        """Run one utterance through the conventional path."""
        platform = self.platform
        machine = self._machine
        costs = machine.costs
        platform.mic.swap_source(BufferSource(item.pcm))
        clock_before = machine.clock.snapshot()
        energy_before = platform.energy.snapshot()
        obs = machine.obs

        with obs.span("utterance", category="pipeline.baseline"):
            with obs.span("capture", category="stage.baseline",
                          frames=item.frames):
                pcm = platform.kernel.capture_pcm(
                    DEVICE_PATH, item.frames, chunk_frames=self.chunk_frames
                )
                self._land_utterance(pcm.astype("<i2").tobytes())

            from repro.ml.asr import SAMPLE_RATE

            with obs.span("asr", category="stage.baseline", samples=len(pcm)):
                asr_macs = int(
                    self.asr.macs_per_second() * len(pcm) / SAMPLE_RATE
                )
                machine.cpu.execute(
                    costs.ml_inference_cycles(asr_macs, secure=False,
                                              int8=False)
                )
                transcript = self.asr.transcribe(pcm)

            if self.bundle is not None:
                with obs.span("classify", category="stage.baseline"):
                    machine.cpu.execute(
                        costs.ml_inference_cycles(
                            self.bundle.inference_macs(), secure=False,
                            int8=self.bundle.filter.is_quantized,
                        )
                    )
                    decision = self.bundle.filter.apply(transcript)
                sensitive, forwarded, payload = (
                    decision.sensitive, decision.forwarded, decision.payload
                )
            else:
                sensitive, forwarded, payload = False, True, transcript

            if forwarded and payload is not None:
                with obs.span("relay", category="stage.baseline"):
                    self._connect()
                    self._avs.recognize(payload)

        clock_after = machine.clock.snapshot()
        energy = platform.energy.delta_since(energy_before)
        return UtteranceResult(
            utterance=item.utterance,
            transcript=transcript,
            sensitive_predicted=sensitive,
            forwarded=forwarded,
            payload=payload,
            latency_cycles=clock_after.now - clock_before.now,
            energy_mj=energy.total_mj,
            domain_cycles=clock_after.delta(clock_before),
        )

    def process(
        self,
        workload: UtteranceWorkload,
        after_each: Callable[["BaselinePipeline"], None] | None = None,
    ) -> PipelineRunResult:
        """Run a whole workload; ``after_each`` is the attack hook."""
        run = PipelineRunResult(pipeline=self.name)
        for item in workload:
            run.results.append(self.process_item(item))
            if after_each is not None:
                after_each(self)
        return run

    # -- adversary-facing surface ------------------------------------------------------

    def attack_targets(self) -> list[tuple[int, int]]:
        """Driver chunk buffer + app utterance buffer — all normal DRAM."""
        targets = []
        if self.driver._buf_addr is not None:
            targets.append((self.driver._buf_addr, self.driver._buf_bytes))
        if self._app_buf_addr is not None:
            targets.append((self._app_buf_addr, self._app_buf_size))
        return targets

    def close(self) -> None:
        """Release normal-world resources (the app's utterance buffer).

        Mirrors :meth:`SecurePipeline.close` so CLI flows can tear down
        either pipeline uniformly.
        """
        if self._app_buf_addr is not None:
            self._machine.ns_allocator.free(self._app_buf_addr)
            self._app_buf_addr = None
            self._app_buf_size = 0
