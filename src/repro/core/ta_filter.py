"""The audio-filter trusted application.

The TA of Fig. 1 steps 4–7: receives PCM from the secure driver via the
PTA, transcribes it, classifies the transcript, filters sensitive content
out of the stream, and relays the remainder to the cloud over TLS through
the TEE supplicant.

Because a real TA ships its model inside the signed TA image, the class
is produced by a factory closing over a :class:`~repro.core.filter.FilterBundle`
plus deployment parameters.  On instance creation the TA *allocates the
model into the secure heap* — which is where the paper's memory-budget
concern (Section V) becomes a hard failure: a model bigger than the heap
raises ``TeeOutOfMemory`` and the TA cannot start.

Commands::

    CMD_PROCESS        (1)  Value(a=frames) → decision dict
    CMD_STATS          (2)  → accumulated per-stage cycle totals
    CMD_HEARTBEAT      (3)  → relay keep-alive through the secure channel
    CMD_PROCESS_STREAM (4)  Value(a=frames) → list of decision dicts; the
                            TA captures one continuous buffer, VAD-segments
                            it in-enclave, and runs the filter path per
                            detected utterance (deployment-realistic mode)
"""

from __future__ import annotations

from typing import Any

from repro.core import pta_audio
from repro.core.filter import FilterBundle
from repro.optee.params import Params
from repro.optee.session import Session
from repro.optee.ta import TaContext, TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.relay.relay import RelayModule
from repro.sim.rng import SimRng

CMD_PROCESS = 1
CMD_STATS = 2
CMD_HEARTBEAT = 3
CMD_PROCESS_STREAM = 4

STAGES = ("capture", "vad", "asr", "classify", "filter", "relay")


def make_audio_filter_ta(
    bundle: FilterBundle,
    pta_uuid: TaUuid,
    cloud_host: str,
    cloud_port: int,
    pinned_server_public: bytes,
    rng: SimRng,
    chunk_frames: int = 256,
    driver_compiled_out: frozenset[str] = frozenset(),
) -> type[TrustedApplication]:
    """Build the TA class with the model and deployment config baked in."""

    class AudioFilterTa(TrustedApplication):
        """ASR + classifier + filter + relay, entirely in the secure world."""

        NAME = "ta.audio-filter"
        FLAGS = TaFlags.SINGLE_INSTANCE | TaFlags.MULTI_SESSION

        def __init__(self) -> None:
            super().__init__()
            self.bundle = bundle
            self.relay: RelayModule | None = None
            self._model_addr: int | None = None
            self._capture_ready = False
            self.stage_cycles: dict[str, int] = {s: 0 for s in STAGES}
            self.decisions: list[dict[str, Any]] = []

        # -- lifecycle ---------------------------------------------------------

        def on_create(self, ctx: TaContext) -> None:
            """Load the model into the secure heap; may raise TeeOutOfMemory."""
            self._model_addr = ctx.alloc(bundle.model_size_bytes)
            ctx.log(
                "model_loaded",
                bytes=bundle.model_size_bytes,
                heap_free=ctx.heap_free_bytes(),
            )
            self.relay = RelayModule(
                ctx, cloud_host, cloud_port, pinned_server_public,
                rng.fork("relay"),
            )

        def on_invoke(self, session: Session, cmd: int, params: Params) -> Any:
            """Dispatch client commands."""
            if cmd == CMD_PROCESS:
                frames = params.value(0).a
                return self._process(frames)
            if cmd == CMD_PROCESS_STREAM:
                frames = params.value(0).a
                return self._process_stream(frames)
            if cmd == CMD_STATS:
                return dict(self.stage_cycles)
            if cmd == CMD_HEARTBEAT:
                assert self.relay is not None
                return self.relay.heartbeat()
            return super().on_invoke(session, cmd, params)

        def on_destroy(self) -> None:
            """Release the model allocation."""
            if self.ctx is not None and self._model_addr is not None:
                self.ctx.free(self._model_addr)
                self._model_addr = None

        # -- the Fig. 1 data path ------------------------------------------------

        def _ensure_capture(self) -> None:
            assert self.ctx is not None
            if self._capture_ready:
                return
            self.ctx.invoke_pta(
                pta_uuid, pta_audio.CMD_INIT,
                {"compiled_out": driver_compiled_out},
            )
            self.ctx.invoke_pta(
                pta_uuid, pta_audio.CMD_OPEN, {"chunk_frames": chunk_frames}
            )
            self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_START, None)
            self._capture_ready = True

        def _stage(self, name: str, start: int) -> int:
            assert self.ctx is not None
            now = self.ctx.now()
            self.stage_cycles[name] += now - start
            return now

        def _process(self, frames: int) -> dict[str, Any]:
            """Capture → ASR → classify → filter → relay, one utterance."""
            ctx = self.ctx
            assert ctx is not None
            self._ensure_capture()

            t = ctx.now()
            pcm = ctx.invoke_pta(pta_uuid, pta_audio.CMD_READ, {"frames": frames})
            self._stage("capture", t)

            record = self._process_segment(pcm)
            ctx.log(
                "processed",
                sensitive=record["sensitive"],
                forwarded=record["forwarded"],
            )
            return record

        def _process_segment(self, pcm) -> dict[str, Any]:
            """ASR → (wake-word gate) → classify → filter → relay."""
            ctx = self.ctx
            assert ctx is not None and self.relay is not None
            costs = ctx._os.machine.costs

            t = ctx.now()
            ctx.compute(
                costs.ml_inference_cycles(
                    self.bundle.asr_macs(len(pcm)), secure=True, int8=False
                )
            )
            transcript = self.bundle.asr.transcribe(pcm)
            t = self._stage("asr", t)

            classify_text = transcript
            if self.bundle.gate is not None:
                ctx.compute(300)  # prefix check is trivial
                gate = self.bundle.gate.check(transcript)
                if not gate.intended:
                    # Accidental capture: never classified, never sent.
                    record = {
                        "transcript": transcript,
                        "probability": 0.0,
                        "sensitive": False,
                        "forwarded": False,
                        "payload": None,
                        "directive": None,
                        "intended": False,
                    }
                    self.decisions.append(record)
                    ctx.log("accidental_capture_dropped")
                    return record
                classify_text = gate.command

            ctx.compute(
                costs.ml_inference_cycles(
                    self.bundle.inference_macs(),
                    secure=True,
                    int8=self.bundle.filter.is_quantized,
                )
            )
            decision = self.bundle.filter.apply(classify_text)
            t = self._stage("classify", t)

            ctx.compute(200)
            t = self._stage("filter", t)

            directive = None
            if decision.forwarded and decision.payload is not None:
                directive = self.relay.send_transcript(decision.payload)
            self._stage("relay", t)
            record = {
                "transcript": transcript,
                "probability": decision.probability,
                "sensitive": decision.sensitive,
                "forwarded": decision.forwarded,
                "payload": decision.payload,
                "directive": directive,
                "intended": True,
            }
            self.decisions.append(record)
            return record

        def _process_stream(self, frames: int) -> list[dict[str, Any]]:
            """Continuous capture, segmented in-enclave by the VAD."""
            from repro.ml.vad import EnergyVad

            ctx = self.ctx
            assert ctx is not None
            self._ensure_capture()

            t = ctx.now()
            pcm = ctx.invoke_pta(pta_uuid, pta_audio.CMD_READ, {"frames": frames})
            t = self._stage("capture", t)

            ctx.compute(len(pcm) // 8)  # energy framing is cheap
            vad = EnergyVad(slack_samples=400)
            segments = vad.extract(pcm)
            self._stage("vad", t)
            ctx.log("vad", segments=len(segments))

            return [self._process_segment(seg) for seg in segments]

    return AudioFilterTa
