"""The audio-filter trusted application.

The TA of Fig. 1 steps 4–7: receives PCM from the secure driver via the
PTA, transcribes it, classifies the transcript, filters sensitive content
out of the stream, and relays the remainder to the cloud over TLS through
the TEE supplicant.

Because a real TA ships its model inside the signed TA image, the class
is produced by a factory closing over a :class:`~repro.core.filter.FilterBundle`
plus deployment parameters.  On instance creation the TA *allocates the
model into the secure heap* — which is where the paper's memory-budget
concern (Section V) becomes a hard failure: a model bigger than the heap
raises ``TeeOutOfMemory`` and the TA cannot start.

Commands::

    CMD_PROCESS        (1)  Value(a=frames, b=seq) → decision dict; ``seq``
                            is the supervisor's 1-based utterance sequence
                            number (0 = unsupervised) used for replay
                            detection after a restart
    CMD_STATS          (2)  → {"stages": per-stage cycle totals,
                              "relay": delivery/retry/queue counters}
    CMD_HEARTBEAT      (3)  → relay keep-alive through the secure channel
    CMD_PROCESS_STREAM (4)  Value(a=frames) → list of decision dicts; the
                            TA captures one continuous buffer, VAD-segments
                            it in-enclave, and runs the filter path per
                            detected utterance (deployment-realistic mode)
    CMD_ALERT          (5)  MemRef(JSON alert doc) → {"status", ...}; ships
                            a health alert through the same relay + sealed
                            store-and-forward path as decisions
    CMD_RESUME         (6)  → {"seq", "utt_seq", "queue_depth",
                            "dialog_cursor"}; where a crash-restarted
                            normal-world client should resume (committed
                            state lives secure-side, never in the client)

Supervised mode (``supervised=True`` in the factory) adds crash
consistency: after every committed decision the TA seals a checkpoint
(filter thresholds come from the signed bundle, so the checkpoint holds
the *mutable* state — last decision, relay-queue dialog cursor, utterance
counters) into secure storage, A/B-alternating between two generations so
a panic mid-write can never destroy the last good checkpoint.  On
re-instantiation ``on_create`` restores the newest valid generation, and
``CMD_PROCESS`` with a sequence number equal to the checkpointed one
returns the *recorded* decision instead of re-running the pipeline — a
committed decision is never replayed (no duplicate relay send) and never
dropped.

Relay outcomes: every decision record carries ``relay_status`` —
``"sent"`` (delivered, possibly after retries), ``"queued"`` (retries
exhausted; payload sealed into the store-and-forward queue),
``"throttled"`` (the cloud's admission tier said back off; payload sealed
into the same queue, to drain after the server-directed window),
``"shed"`` (the bounded queue was full; the payload was refused
fail-closed with explicit accounting) or ``"dropped"`` (the filter
withheld it; nothing ever left the TEE) — plus ``relay_attempts``.
Queued payloads are drained oldest-first after the next successful send
(including heartbeats), so no forwarded decision is ever lost to a
network outage short of deliberate, counted shedding.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Iterator

from repro.core import pta_audio
from repro.core.filter import FilterBundle
from repro.errors import (
    AuthenticationFailure,
    RelayDeliveryError,
    RelayQueueFullError,
    RelayThrottledError,
    TeeItemNotFound,
)
from repro.optee.params import Params
from repro.optee.session import Session
from repro.optee.ta import TaContext, TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.relay.queue import StoreForwardQueue
from repro.relay.relay import RelayModule, RetryPolicy
from repro.sim.rng import SimRng

CMD_PROCESS = 1
CMD_STATS = 2
CMD_HEARTBEAT = 3
CMD_PROCESS_STREAM = 4
CMD_ALERT = 5
# Crash recovery for the normal-world client: a freshly restarted client
# application (its session object died with the process) asks the TA
# where the committed state actually is, instead of guessing.
CMD_RESUME = 6

STAGES = ("capture", "vad", "asr", "classify", "filter", "relay")

RELAY_SENT = "sent"
RELAY_QUEUED = "queued"
RELAY_DROPPED = "dropped"
# Admission backpressure: the cloud answered Throttled, the payload is
# sealed in the store-and-forward queue awaiting the retry window.
RELAY_THROTTLED = "throttled"
# Fail-closed shedding: the bounded queue refused the payload; the
# decision is accounted (counter + alert-worthy log), never silent.
RELAY_SHED = "shed"

# A/B checkpoint generations: writes alternate between the two names so a
# panic mid-seal can only lose the in-flight generation, never the last
# committed one.
_CKPT_NAMES = ("ckpt/audio-filter/a", "ckpt/audio-filter/b")


def make_audio_filter_ta(
    bundle: FilterBundle,
    pta_uuid: TaUuid,
    cloud_host: str,
    cloud_port: int,
    pinned_server_public: bytes,
    rng: SimRng,
    chunk_frames: int = 256,
    driver_compiled_out: frozenset[str] = frozenset(),
    retry_policy: RetryPolicy | None = None,
    supervised: bool = False,
    checkpoint_every: int = 1,
    device_id: str = "",
    trace_ids: bool = False,
    queue_max_depth: int = 64,
) -> type[TrustedApplication]:
    """Build the TA class with the model and deployment config baked in.

    ``supervised=True`` enables sealed checkpoint/restore (see module
    docstring); ``checkpoint_every`` seals a checkpoint every N committed
    decisions.  Both default off so unsupervised runs stay byte-identical
    (checkpoint storage RPCs charge cycles).  ``device_id`` is stamped
    into relay events so a cloud endpoint shared by a fleet can scope
    duplicate suppression per sender; empty (the default) keeps the wire
    bytes of single-device runs unchanged.

    ``trace_ids=True`` stamps every utterance with a deterministic trace
    id — ``{device_id}/u{seq:05d}``, derived from the TA's own utterance
    counter, never a clock or RNG — carried on stage spans, relay events,
    store-and-forward entries and cloud records, so one utterance can be
    followed end to end.  Default off: the id rides the wire payload, and
    single-device perf baselines pin those bytes.
    """

    class AudioFilterTa(TrustedApplication):
        """ASR + classifier + filter + relay, entirely in the secure world."""

        NAME = "ta.audio-filter"
        FLAGS = TaFlags.SINGLE_INSTANCE | TaFlags.MULTI_SESSION

        def __init__(self) -> None:
            super().__init__()
            self.bundle = bundle
            self.relay: RelayModule | None = None
            self.queue: StoreForwardQueue | None = None
            self._model_addr: int | None = None
            self._capture_ready = False
            self.stage_cycles: dict[str, int] = {s: 0 for s in STAGES}
            self.relay_counts: dict[str, int] = {
                RELAY_SENT: 0, RELAY_QUEUED: 0, RELAY_DROPPED: 0,
                RELAY_THROTTLED: 0, RELAY_SHED: 0, "drained": 0,
            }
            self.decisions: list[dict[str, Any]] = []
            # Checkpoint state (supervised mode): sequence number and
            # decision record of the last sealed checkpoint, plus which
            # A/B generation the next seal writes.
            self._ckpt_seq = 0
            self._ckpt_record: dict[str, Any] | None = None
            self._ckpt_writes = 0
            # Monotonic utterance counter behind trace-id derivation;
            # counts committed utterances across restarts (restored from
            # the checkpoint in supervised trace runs).
            self._utt_seq = 0

        def _next_trace_id(self) -> str:
            """Allocate the next utterance's deterministic trace id.

            The counter always advances (pure Python, no cycles charged)
            but the id is only materialized when the TA was built with
            ``trace_ids`` — disabled runs return ``""`` and nothing
            downstream carries a stamp.
            """
            self._utt_seq += 1
            if not trace_ids:
                return ""
            return f"{device_id or 'device'}/u{self._utt_seq:05d}"

        # -- lifecycle ---------------------------------------------------------

        def on_create(self, ctx: TaContext) -> None:
            """Load the model into the secure heap; may raise TeeOutOfMemory."""
            self._model_addr = ctx.alloc(bundle.model_size_bytes)
            ctx.log(
                "model_loaded",
                bytes=bundle.model_size_bytes,
                heap_free=ctx.heap_free_bytes(),
            )
            self.relay = RelayModule(
                ctx, cloud_host, cloud_port, pinned_server_public,
                rng.fork("relay"), retry_policy=retry_policy,
                device_id=device_id,
            )
            # Restores entries a previous instance failed to deliver.
            self.queue = StoreForwardQueue(
                ctx.storage, max_depth=queue_max_depth
            )
            if supervised:
                self._restore_checkpoint(ctx)

        def on_invoke(self, session: Session, cmd: int, params: Params) -> Any:
            """Dispatch client commands."""
            if cmd == CMD_PROCESS:
                frames = params.value(0).a
                return self._process(frames, seq=params.value(0).b)
            if cmd == CMD_ALERT:
                assert self.ctx is not None
                raw = self.ctx.read_memref(params.memref(0))
                return self._relay_alert(json.loads(raw.decode()))
            if cmd == CMD_PROCESS_STREAM:
                frames = params.value(0).a
                return self._process_stream(frames)
            if cmd == CMD_STATS:
                return self._stats()
            if cmd == CMD_HEARTBEAT:
                assert self.relay is not None
                try:
                    directive = self.relay.heartbeat()
                except RelayThrottledError as exc:
                    return {
                        "directive": "error",
                        "reason": "throttled",
                        "retry_after_cycles": exc.retry_after_cycles,
                    }
                except RelayDeliveryError as exc:
                    return {
                        "directive": "error",
                        "reason": "cloud unreachable",
                        "attempts": exc.attempts,
                    }
                self._drain_queue()
                return directive
            if cmd == CMD_RESUME:
                return self._resume_state()
            return super().on_invoke(session, cmd, params)

        def on_destroy(self) -> None:
            """Stop secure capture and release the model allocation."""
            if self.ctx is not None and self._capture_ready:
                self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_STOP, None)
                self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_CLOSE, None)
            self._capture_ready = False
            if self.ctx is not None and self._model_addr is not None:
                self.ctx.free(self._model_addr)
                self._model_addr = None

        # -- crash consistency (supervised mode) --------------------------------

        def _resume_state(self) -> dict[str, Any]:
            """Where a restarted normal-world client should pick up.

            The client application can crash at any moment, losing its
            session object and its utterance counter.  Everything needed
            to resume lives secure-side: the last *committed* sequence
            number (sealed checkpoint), the store-and-forward backlog and
            the dialog cursor.  A recovered client sets its own counter
            to ``seq`` and continues — re-invoking sequence ``seq`` is
            replay-suppressed, so nothing double-sends, and invoking
            ``seq + 1`` processes the first uncommitted utterance.
            """
            assert self.relay is not None and self.queue is not None
            if self.ctx is not None:
                self.ctx.metrics.inc("tee.client_resumes")
            return {
                "seq": self._ckpt_seq,
                "utt_seq": self._utt_seq,
                "queue_depth": len(self.queue),
                "dialog_cursor": self.relay.dialog_cursor,
            }

        def _restore_checkpoint(self, ctx: TaContext) -> None:
            """Adopt the newest valid sealed checkpoint, if any.

            Each generation is validated independently — a corrupted or
            missing blob (chaos injection, torn write before the panic)
            just removes that candidate; the other generation still
            restores.  Restoring nothing is fine: a fresh start from
            sequence zero replays nothing and drops nothing that was
            ever committed.
            """
            best: dict[str, Any] | None = None
            best_name = None
            for name in _CKPT_NAMES:
                if name not in ctx.storage.names():
                    continue
                try:
                    doc = json.loads(ctx.storage.get(name).decode())
                except (TeeItemNotFound, AuthenticationFailure) as exc:
                    ctx.log(
                        "checkpoint_invalid",
                        generation=name, error=type(exc).__name__,
                    )
                    continue
                if best is None or doc["seq"] > best["seq"]:
                    best, best_name = doc, name
            if best is None:
                return
            self._ckpt_seq = int(best["seq"])
            self._ckpt_record = best["record"]
            # Older checkpoints (or trace-disabled ones) carry no
            # utterance counter; the supervisor's 1-based seq is the same
            # count in supervised mode, so it is the correct fallback.
            self._utt_seq = int(best.get("utt_seq", best["seq"]))
            self.relay_counts.update(best["relay_counts"])
            self.stage_cycles.update(
                {k: int(v) for k, v in best["stages"].items()}
            )
            # The relay module's wire-level stats restart at zero with
            # each fresh instance; without restoring them, CMD_STATS
            # would shadow the cumulative "sent" with the post-restart
            # window (the relay dict merges module stats last).
            self.relay.stats.update(
                {k: int(v) for k, v in best.get("relay_stats", {}).items()}
            )
            # Keep the A/B alternation moving past the restored
            # generation so the next seal overwrites the *older* one.
            self._ckpt_writes = _CKPT_NAMES.index(best_name) + 1
            assert self.relay is not None
            # A fresh relay module restarts its dialog-id counter at 0;
            # re-using an id the dead instance already spent would let
            # the cloud's duplicate suppression eat a *new* decision.
            # Advance past every id the old instance could have
            # allocated since this checkpoint was sealed (at most one
            # per decision per checkpoint interval, plus retries and
            # queue-drain re-sends — hence the margin).
            self.relay.restore_dialog_cursor(
                int(best["dialog_cursor"]) + 2 * checkpoint_every + 4
            )
            age = ctx.now() - int(best["cycle"])
            ctx.metrics.observe("tee.checkpoint_age", age)
            ctx.log(
                "checkpoint_restored",
                seq=self._ckpt_seq, generation=best_name, age_cycles=age,
            )

        def _checkpoint(self, seq: int, record: dict[str, Any]) -> None:
            """Seal the post-decision state into the next A/B generation."""
            ctx = self.ctx
            assert ctx is not None and self.relay is not None
            doc = {
                "seq": seq,
                "record": record,
                "dialog_cursor": self.relay.dialog_cursor,
                "relay_counts": dict(self.relay_counts),
                "relay_stats": dict(self.relay.stats),
                "stages": dict(self.stage_cycles),
                "cycle": ctx.now(),
            }
            if trace_ids:
                # Only trace runs grow the doc: seal cost scales with
                # payload bytes, and trace-off runs pin byte-identity.
                doc["utt_seq"] = self._utt_seq
            name = _CKPT_NAMES[self._ckpt_writes % len(_CKPT_NAMES)]
            ctx.storage.put(name, json.dumps(doc).encode())
            self._ckpt_writes += 1
            self._ckpt_seq = seq
            self._ckpt_record = record
            ctx.metrics.inc("tee.checkpoints")

        # -- the Fig. 1 data path ------------------------------------------------

        def _ensure_capture(self) -> None:
            """Bring secure capture up — or adopt it where it already is.

            The PTA and driver live in the TEE OS, not in the TA, so they
            survive a TA panic with the stream still running.  A restarted
            *supervised* instance must not blindly re-OPEN (the driver's
            state machine rejects OPEN outside "idle"); instead it asks
            the PTA where the hardware actually is (``CMD_STATE``) and
            performs only the missing transitions.  Unsupervised TAs skip
            the handshake — its PTA invoke would cost cycles and break
            byte-identity with supervision disabled.
            """
            assert self.ctx is not None
            if self._capture_ready:
                return
            # INIT is idempotent — and establishes this TA as the PTA's
            # registered caller, which STATE requires.
            self.ctx.invoke_pta(
                pta_uuid, pta_audio.CMD_INIT,
                {"compiled_out": driver_compiled_out},
            )
            state = "uninit"
            if supervised:
                state = self.ctx.invoke_pta(
                    pta_uuid, pta_audio.CMD_STATE, None
                )
            if state == "capturing":
                self.ctx.log("capture_adopted")
            elif state == "prepared":
                self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_START, None)
                self.ctx.log("capture_resumed")
            else:
                self.ctx.invoke_pta(
                    pta_uuid, pta_audio.CMD_OPEN,
                    {"chunk_frames": chunk_frames},
                )
                self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_START, None)
            self._capture_ready = True

        @contextmanager
        def _stage(self, name: str, **attrs: Any) -> Iterator[None]:
            """Bracket one Fig. 1 stage in a span.

            The span feeds the observability layer (per-stage histograms,
            exportable traces); its duration also accumulates into the
            legacy ``stage_cycles`` blob that ``CMD_STATS`` reports.
            """
            assert self.ctx is not None
            with self.ctx.span(name, category="stage.secure", **attrs) as sp:
                yield
            self.stage_cycles[name] += sp.cycles

        # -- fault-tolerant relay ---------------------------------------------

        def _stats(self) -> dict[str, Any]:
            assert self.relay is not None and self.queue is not None
            return {
                "stages": dict(self.stage_cycles),
                "relay": {
                    **self.relay_counts,
                    **self.relay.stats,
                    "queue_depth": len(self.queue),
                },
            }

        def _drain_queue(self) -> int:
            """Flush stored payloads after a successful send.

            Re-sends reuse each entry's original dialog id and prior
            attempt count, so the cloud can deduplicate if a pre-spill
            attempt actually got through and only its reply was lost.
            """
            assert self.relay is not None and self.queue is not None
            if not len(self.queue):
                return 0
            relay = self.relay

            def resend(payload: str, meta: dict[str, Any]) -> Any:
                send = (
                    relay.send_alert
                    if meta.get("kind") == "alert"
                    else relay.send_transcript
                )
                return send(
                    payload,
                    dialog_id=meta.get("dialog_id"),
                    prior_attempts=int(meta.get("attempts", 0)),
                    trace_id=str(meta.get("trace_id", "")),
                )

            drained = self.queue.drain(resend)
            self.relay_counts["drained"] += drained
            if drained:
                assert self.ctx is not None
                self.ctx.log(
                    "relay_queue_drained",
                    drained=drained, remaining=len(self.queue),
                )
            return drained

        def _spill(
            self,
            payload: str,
            status: str,
            meta: dict[str, Any],
            attempts: int,
        ) -> tuple[str, dict | None, int]:
            """Seal an undeliverable payload into the bounded queue.

            Returns ``(status, None, attempts)`` — or sheds fail-closed
            when the queue is at depth: the newest payload is refused
            with explicit accounting (``relay.queue.rejected`` + the
            ``shed`` count CMD_STATS reports), never silently, and never
            by evicting an older already-accounted entry.
            """
            assert self.ctx is not None and self.queue is not None
            try:
                name = self.queue.enqueue(payload, meta=meta)
            except RelayQueueFullError as exc:
                self.relay_counts[RELAY_SHED] += 1
                self.ctx.metrics.inc("relay.queue.rejected")
                self.ctx.log(
                    "relay_shed", depth=exc.depth, would_be=status,
                )
                return RELAY_SHED, None, attempts
            self.relay_counts[status] += 1
            self.ctx.log(
                "relay_queued",
                entry=name, depth=len(self.queue), status=status,
            )
            return status, None, attempts

        def _relay_payload(
            self, payload: str, trace_id: str = ""
        ) -> tuple[str, dict | None, int]:
            """Deliver one filtered payload; spill to the queue on failure.

            Returns ``(status, directive, attempts)``.  The payload handed
            over here is already filtered, so queueing it (sealed) leaks
            nothing the relay would not eventually send anyway.  A trace
            id rides both the send and the sealed queue entry, so a
            drained re-send keeps the original utterance's correlation.

            Backpressure (a ``Throttled`` admission verdict, or a still
            open backpressure window) is not a fault: the payload spills
            with status ``"throttled"`` and no retry budget is spent —
            the server said *when* to come back, and the queue drain after
            that window honours it.
            """
            assert self.ctx is not None
            assert self.relay is not None and self.queue is not None
            dialog_id = self.relay.allocate_dialog_id()
            try:
                directive = self.relay.send_transcript(
                    payload, dialog_id=dialog_id, trace_id=trace_id
                )
            except RelayThrottledError as exc:
                meta = {"dialog_id": dialog_id, "attempts": exc.attempts}
                if trace_id:
                    meta["trace_id"] = trace_id
                return self._spill(
                    payload, RELAY_THROTTLED, meta, exc.attempts
                )
            except RelayDeliveryError as exc:
                meta = {"dialog_id": dialog_id, "attempts": exc.attempts}
                if trace_id:
                    meta["trace_id"] = trace_id
                return self._spill(payload, RELAY_QUEUED, meta, exc.attempts)
            self.relay_counts[RELAY_SENT] += 1
            # The link just worked: opportunistically flush the backlog.
            self._drain_queue()
            return RELAY_SENT, directive, self.relay.last_attempts

        def _relay_alert(self, doc: dict[str, Any]) -> dict[str, Any]:
            """Ship a health alert with the same guarantees as decisions.

            Alerts contain only operational telemetry (SLO verdicts,
            flight-recorder spans — no audio, no transcripts), but they
            ride the identical path: TLS relay with retries, and on
            failure a sealed spill into the store-and-forward queue
            tagged ``kind="alert"`` so the drain re-sends it as one.
            """
            assert self.ctx is not None
            assert self.relay is not None and self.queue is not None
            # Health reports name the trace that tripped the SLO; keep
            # that correlation on the alert's own relay path.
            alert_trace = str(doc.get("trace_id", "") or "")
            payload = json.dumps(doc, sort_keys=True)
            dialog_id = self.relay.allocate_dialog_id()
            try:
                directive = self.relay.send_alert(
                    payload, dialog_id=dialog_id, trace_id=alert_trace
                )
            except RelayDeliveryError as exc:
                status = (
                    RELAY_THROTTLED
                    if isinstance(exc, RelayThrottledError)
                    else RELAY_QUEUED
                )
                meta = {
                    "dialog_id": dialog_id,
                    "attempts": exc.attempts,
                    "kind": "alert",
                }
                if alert_trace:
                    meta["trace_id"] = alert_trace
                try:
                    name = self.queue.enqueue(payload, meta=meta)
                except RelayQueueFullError as full:
                    # Same fail-closed shedding as decisions, accounted
                    # in its own counter: alerts are telemetry, so they
                    # never displace a decision payload from the queue.
                    self.ctx.metrics.inc("relay.queue.rejected")
                    self.ctx.metrics.inc("tee.alerts_shed")
                    self.ctx.log("alert_shed", depth=full.depth)
                    return {"status": RELAY_SHED, "attempts": exc.attempts}
                self.ctx.metrics.inc("tee.alerts_queued")
                self.ctx.log("alert_queued", entry=name, depth=len(self.queue))
                return {
                    "status": status,
                    "entry": name,
                    "attempts": exc.attempts,
                }
            self.ctx.metrics.inc("tee.alerts_sent")
            self._drain_queue()
            return {
                "status": RELAY_SENT,
                "directive": directive,
                "attempts": self.relay.last_attempts,
            }

        def _process(self, frames: int, seq: int = 0) -> dict[str, Any]:
            """Capture → ASR → classify → filter → relay, one utterance.

            ``seq`` is the supervisor's 1-based utterance number (0 when
            unsupervised).  If it matches the restored checkpoint, this
            utterance already committed before the panic — return the
            recorded decision instead of re-running the pipeline, so the
            relay never double-sends.
            """
            ctx = self.ctx
            assert ctx is not None
            if (
                supervised
                and seq
                and seq == self._ckpt_seq
                and self._ckpt_record is not None
            ):
                ctx.metrics.inc("tee.replays_suppressed")
                ctx.log("replay_suppressed", seq=seq)
                return dict(self._ckpt_record)
            # Allocate after the replay check: a suppressed utterance
            # keeps the id the dead instance already spent on it.
            tid = self._next_trace_id()
            self._ensure_capture()

            with self._stage(
                "capture", frames=frames, **({"trace_id": tid} if tid else {})
            ):
                pcm = ctx.invoke_pta(
                    pta_uuid, pta_audio.CMD_READ, {"frames": frames}
                )

            record = self._process_segment(pcm, trace_id=tid)
            if supervised and seq and seq % checkpoint_every == 0:
                self._checkpoint(seq, record)
            ctx.log(
                "processed",
                sensitive=record["sensitive"],
                forwarded=record["forwarded"],
            )
            return record

        def _process_segment(self, pcm, trace_id: str = "") -> dict[str, Any]:
            """ASR → (wake-word gate) → classify → filter → relay."""
            ctx = self.ctx
            assert ctx is not None and self.relay is not None
            costs = ctx._os.machine.costs
            stamp = {"trace_id": trace_id} if trace_id else {}

            with self._stage("asr", samples=len(pcm), **stamp):
                ctx.compute(
                    costs.ml_inference_cycles(
                        self.bundle.asr_macs(len(pcm)), secure=True, int8=False
                    )
                )
                transcript = self.bundle.asr.transcribe(pcm)

            with self._stage("classify", **stamp):
                classify_text = transcript
                if self.bundle.gate is not None:
                    ctx.compute(300)  # prefix check is trivial
                    gate = self.bundle.gate.check(transcript)
                    if not gate.intended:
                        # Accidental capture: never classified, never sent.
                        record = {
                            "transcript": transcript,
                            "probability": 0.0,
                            "sensitive": False,
                            "forwarded": False,
                            "payload": None,
                            "directive": None,
                            "intended": False,
                            "relay_status": RELAY_DROPPED,
                            "relay_attempts": 0,
                        }
                        self.relay_counts[RELAY_DROPPED] += 1
                        self.decisions.append(record)
                        ctx.log("accidental_capture_dropped")
                        return record
                    classify_text = gate.command

                ctx.compute(
                    costs.ml_inference_cycles(
                        self.bundle.inference_macs(),
                        secure=True,
                        int8=self.bundle.filter.is_quantized,
                    )
                )
                decision = self.bundle.filter.apply(classify_text)

            with self._stage("filter", **stamp):
                ctx.compute(200)

            with self._stage("relay", **stamp):
                directive = None
                relay_status, relay_attempts = RELAY_DROPPED, 0
                if decision.forwarded and decision.payload is not None:
                    relay_status, directive, relay_attempts = (
                        self._relay_payload(decision.payload, trace_id=trace_id)
                    )
                else:
                    self.relay_counts[RELAY_DROPPED] += 1
            record = {
                "transcript": transcript,
                "probability": decision.probability,
                "sensitive": decision.sensitive,
                "forwarded": decision.forwarded,
                "payload": decision.payload,
                "directive": directive,
                "intended": True,
                "relay_status": relay_status,
                "relay_attempts": relay_attempts,
            }
            self.decisions.append(record)
            return record

        def _process_stream(self, frames: int) -> list[dict[str, Any]]:
            """Continuous capture, segmented in-enclave by the VAD."""
            from repro.ml.vad import EnergyVad

            ctx = self.ctx
            assert ctx is not None
            self._ensure_capture()

            with self._stage("capture", frames=frames):
                pcm = ctx.invoke_pta(
                    pta_uuid, pta_audio.CMD_READ, {"frames": frames}
                )

            with self._stage("vad"):
                ctx.compute(len(pcm) // 8)  # energy framing is cheap
                vad = EnergyVad(slack_samples=400, metrics=ctx.metrics)
                segments = vad.extract(pcm)
            ctx.log("vad", segments=len(segments))

            records = []
            for i, seg in enumerate(segments):
                tid = self._next_trace_id()
                with ctx.span(
                    "segment", category="pipeline.secure", index=i,
                    **({"trace_id": tid} if tid else {}),
                ):
                    records.append(self._process_segment(seg, trace_id=tid))
            return records

    return AudioFilterTa
