"""The audio-filter trusted application.

The TA of Fig. 1 steps 4–7: receives PCM from the secure driver via the
PTA, transcribes it, classifies the transcript, filters sensitive content
out of the stream, and relays the remainder to the cloud over TLS through
the TEE supplicant.

Because a real TA ships its model inside the signed TA image, the class
is produced by a factory closing over a :class:`~repro.core.filter.FilterBundle`
plus deployment parameters.  On instance creation the TA *allocates the
model into the secure heap* — which is where the paper's memory-budget
concern (Section V) becomes a hard failure: a model bigger than the heap
raises ``TeeOutOfMemory`` and the TA cannot start.

Commands::

    CMD_PROCESS        (1)  Value(a=frames) → decision dict
    CMD_STATS          (2)  → {"stages": per-stage cycle totals,
                              "relay": delivery/retry/queue counters}
    CMD_HEARTBEAT      (3)  → relay keep-alive through the secure channel
    CMD_PROCESS_STREAM (4)  Value(a=frames) → list of decision dicts; the
                            TA captures one continuous buffer, VAD-segments
                            it in-enclave, and runs the filter path per
                            detected utterance (deployment-realistic mode)

Relay outcomes: every decision record carries ``relay_status`` —
``"sent"`` (delivered, possibly after retries), ``"queued"`` (retries
exhausted; payload sealed into the store-and-forward queue) or
``"dropped"`` (the filter withheld it; nothing ever left the TEE) — plus
``relay_attempts``.  Queued payloads are drained oldest-first after the
next successful send (including heartbeats), so no forwarded decision is
ever lost to a network outage.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.core import pta_audio
from repro.core.filter import FilterBundle
from repro.errors import RelayDeliveryError
from repro.optee.params import Params
from repro.optee.session import Session
from repro.optee.ta import TaContext, TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.relay.queue import StoreForwardQueue
from repro.relay.relay import RelayModule, RetryPolicy
from repro.sim.rng import SimRng

CMD_PROCESS = 1
CMD_STATS = 2
CMD_HEARTBEAT = 3
CMD_PROCESS_STREAM = 4

STAGES = ("capture", "vad", "asr", "classify", "filter", "relay")

RELAY_SENT = "sent"
RELAY_QUEUED = "queued"
RELAY_DROPPED = "dropped"


def make_audio_filter_ta(
    bundle: FilterBundle,
    pta_uuid: TaUuid,
    cloud_host: str,
    cloud_port: int,
    pinned_server_public: bytes,
    rng: SimRng,
    chunk_frames: int = 256,
    driver_compiled_out: frozenset[str] = frozenset(),
    retry_policy: RetryPolicy | None = None,
) -> type[TrustedApplication]:
    """Build the TA class with the model and deployment config baked in."""

    class AudioFilterTa(TrustedApplication):
        """ASR + classifier + filter + relay, entirely in the secure world."""

        NAME = "ta.audio-filter"
        FLAGS = TaFlags.SINGLE_INSTANCE | TaFlags.MULTI_SESSION

        def __init__(self) -> None:
            super().__init__()
            self.bundle = bundle
            self.relay: RelayModule | None = None
            self.queue: StoreForwardQueue | None = None
            self._model_addr: int | None = None
            self._capture_ready = False
            self.stage_cycles: dict[str, int] = {s: 0 for s in STAGES}
            self.relay_counts: dict[str, int] = {
                RELAY_SENT: 0, RELAY_QUEUED: 0, RELAY_DROPPED: 0, "drained": 0,
            }
            self.decisions: list[dict[str, Any]] = []

        # -- lifecycle ---------------------------------------------------------

        def on_create(self, ctx: TaContext) -> None:
            """Load the model into the secure heap; may raise TeeOutOfMemory."""
            self._model_addr = ctx.alloc(bundle.model_size_bytes)
            ctx.log(
                "model_loaded",
                bytes=bundle.model_size_bytes,
                heap_free=ctx.heap_free_bytes(),
            )
            self.relay = RelayModule(
                ctx, cloud_host, cloud_port, pinned_server_public,
                rng.fork("relay"), retry_policy=retry_policy,
            )
            # Restores entries a previous instance failed to deliver.
            self.queue = StoreForwardQueue(ctx.storage)

        def on_invoke(self, session: Session, cmd: int, params: Params) -> Any:
            """Dispatch client commands."""
            if cmd == CMD_PROCESS:
                frames = params.value(0).a
                return self._process(frames)
            if cmd == CMD_PROCESS_STREAM:
                frames = params.value(0).a
                return self._process_stream(frames)
            if cmd == CMD_STATS:
                return self._stats()
            if cmd == CMD_HEARTBEAT:
                assert self.relay is not None
                try:
                    directive = self.relay.heartbeat()
                except RelayDeliveryError as exc:
                    return {
                        "directive": "error",
                        "reason": "cloud unreachable",
                        "attempts": exc.attempts,
                    }
                self._drain_queue()
                return directive
            return super().on_invoke(session, cmd, params)

        def on_destroy(self) -> None:
            """Stop secure capture and release the model allocation."""
            if self.ctx is not None and self._capture_ready:
                self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_STOP, None)
                self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_CLOSE, None)
            self._capture_ready = False
            if self.ctx is not None and self._model_addr is not None:
                self.ctx.free(self._model_addr)
                self._model_addr = None

        # -- the Fig. 1 data path ------------------------------------------------

        def _ensure_capture(self) -> None:
            assert self.ctx is not None
            if self._capture_ready:
                return
            self.ctx.invoke_pta(
                pta_uuid, pta_audio.CMD_INIT,
                {"compiled_out": driver_compiled_out},
            )
            self.ctx.invoke_pta(
                pta_uuid, pta_audio.CMD_OPEN, {"chunk_frames": chunk_frames}
            )
            self.ctx.invoke_pta(pta_uuid, pta_audio.CMD_START, None)
            self._capture_ready = True

        @contextmanager
        def _stage(self, name: str, **attrs: Any) -> Iterator[None]:
            """Bracket one Fig. 1 stage in a span.

            The span feeds the observability layer (per-stage histograms,
            exportable traces); its duration also accumulates into the
            legacy ``stage_cycles`` blob that ``CMD_STATS`` reports.
            """
            assert self.ctx is not None
            with self.ctx.span(name, category="stage.secure", **attrs) as sp:
                yield
            self.stage_cycles[name] += sp.cycles

        # -- fault-tolerant relay ---------------------------------------------

        def _stats(self) -> dict[str, Any]:
            assert self.relay is not None and self.queue is not None
            return {
                "stages": dict(self.stage_cycles),
                "relay": {
                    **self.relay_counts,
                    **self.relay.stats,
                    "queue_depth": len(self.queue),
                },
            }

        def _drain_queue(self) -> int:
            """Flush stored payloads after a successful send.

            Re-sends reuse each entry's original dialog id and prior
            attempt count, so the cloud can deduplicate if a pre-spill
            attempt actually got through and only its reply was lost.
            """
            assert self.relay is not None and self.queue is not None
            if not len(self.queue):
                return 0
            relay = self.relay
            drained = self.queue.drain(
                lambda payload, meta: relay.send_transcript(
                    payload,
                    dialog_id=meta.get("dialog_id"),
                    prior_attempts=int(meta.get("attempts", 0)),
                )
            )
            self.relay_counts["drained"] += drained
            if drained:
                assert self.ctx is not None
                self.ctx.log(
                    "relay_queue_drained",
                    drained=drained, remaining=len(self.queue),
                )
            return drained

        def _relay_payload(self, payload: str) -> tuple[str, dict | None, int]:
            """Deliver one filtered payload; spill to the queue on failure.

            Returns ``(status, directive, attempts)``.  The payload handed
            over here is already filtered, so queueing it (sealed) leaks
            nothing the relay would not eventually send anyway.
            """
            assert self.ctx is not None
            assert self.relay is not None and self.queue is not None
            dialog_id = self.relay.allocate_dialog_id()
            try:
                directive = self.relay.send_transcript(
                    payload, dialog_id=dialog_id
                )
            except RelayDeliveryError as exc:
                name = self.queue.enqueue(
                    payload,
                    meta={"dialog_id": dialog_id, "attempts": exc.attempts},
                )
                self.relay_counts[RELAY_QUEUED] += 1
                self.ctx.log(
                    "relay_queued", entry=name, depth=len(self.queue)
                )
                return RELAY_QUEUED, None, exc.attempts
            self.relay_counts[RELAY_SENT] += 1
            # The link just worked: opportunistically flush the backlog.
            self._drain_queue()
            return RELAY_SENT, directive, self.relay.last_attempts

        def _process(self, frames: int) -> dict[str, Any]:
            """Capture → ASR → classify → filter → relay, one utterance."""
            ctx = self.ctx
            assert ctx is not None
            self._ensure_capture()

            with self._stage("capture", frames=frames):
                pcm = ctx.invoke_pta(
                    pta_uuid, pta_audio.CMD_READ, {"frames": frames}
                )

            record = self._process_segment(pcm)
            ctx.log(
                "processed",
                sensitive=record["sensitive"],
                forwarded=record["forwarded"],
            )
            return record

        def _process_segment(self, pcm) -> dict[str, Any]:
            """ASR → (wake-word gate) → classify → filter → relay."""
            ctx = self.ctx
            assert ctx is not None and self.relay is not None
            costs = ctx._os.machine.costs

            with self._stage("asr", samples=len(pcm)):
                ctx.compute(
                    costs.ml_inference_cycles(
                        self.bundle.asr_macs(len(pcm)), secure=True, int8=False
                    )
                )
                transcript = self.bundle.asr.transcribe(pcm)

            with self._stage("classify"):
                classify_text = transcript
                if self.bundle.gate is not None:
                    ctx.compute(300)  # prefix check is trivial
                    gate = self.bundle.gate.check(transcript)
                    if not gate.intended:
                        # Accidental capture: never classified, never sent.
                        record = {
                            "transcript": transcript,
                            "probability": 0.0,
                            "sensitive": False,
                            "forwarded": False,
                            "payload": None,
                            "directive": None,
                            "intended": False,
                            "relay_status": RELAY_DROPPED,
                            "relay_attempts": 0,
                        }
                        self.relay_counts[RELAY_DROPPED] += 1
                        self.decisions.append(record)
                        ctx.log("accidental_capture_dropped")
                        return record
                    classify_text = gate.command

                ctx.compute(
                    costs.ml_inference_cycles(
                        self.bundle.inference_macs(),
                        secure=True,
                        int8=self.bundle.filter.is_quantized,
                    )
                )
                decision = self.bundle.filter.apply(classify_text)

            with self._stage("filter"):
                ctx.compute(200)

            with self._stage("relay"):
                directive = None
                relay_status, relay_attempts = RELAY_DROPPED, 0
                if decision.forwarded and decision.payload is not None:
                    relay_status, directive, relay_attempts = (
                        self._relay_payload(decision.payload)
                    )
                else:
                    self.relay_counts[RELAY_DROPPED] += 1
            record = {
                "transcript": transcript,
                "probability": decision.probability,
                "sensitive": decision.sensitive,
                "forwarded": decision.forwarded,
                "payload": decision.payload,
                "directive": directive,
                "intended": True,
                "relay_status": relay_status,
                "relay_attempts": relay_attempts,
            }
            self.decisions.append(record)
            return record

        def _process_stream(self, frames: int) -> list[dict[str, Any]]:
            """Continuous capture, segmented in-enclave by the VAD."""
            from repro.ml.vad import EnergyVad

            ctx = self.ctx
            assert ctx is not None
            self._ensure_capture()

            with self._stage("capture", frames=frames):
                pcm = ctx.invoke_pta(
                    pta_uuid, pta_audio.CMD_READ, {"frames": frames}
                )

            with self._stage("vad"):
                ctx.compute(len(pcm) // 8)  # energy framing is cheap
                vad = EnergyVad(slack_samples=400, metrics=ctx.metrics)
                segments = vad.extract(pcm)
            ctx.log("vad", segments=len(segments))

            records = []
            for i, seg in enumerate(segments):
                with ctx.span("segment", category="pipeline.secure", index=i):
                    records.append(self._process_segment(seg))
            return records

    return AudioFilterTa
