"""The EL3 secure monitor: owner of world switches.

On ARMv8-A, the only architectural way to move between the normal and
secure worlds is an exception to EL3 — in practice an ``SMC`` instruction
handled by the secure monitor.  OP-TEE's normal-world driver funnels every
TEE request through a small set of SMC function identifiers; we model the
ones the design exercises.

The monitor charges the world-switch cost *twice* per call (entry and
return), which is the dominant fixed overhead the paper anticipates for
TEE-hosted drivers (Section V).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.errors import SmcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.trace import TraceLog
from repro.tz.costs import CostModel
from repro.tz.worlds import Cpu, World


class SmcFunction(enum.IntEnum):
    """SMC function identifiers (modelled on OP-TEE's SMC ABI)."""

    CALL_WITH_ARG = 0x32000004  # OPTEE_SMC_CALL_WITH_ARG: invoke the TEE
    GET_SHM_CONFIG = 0x32000007  # discover the shared-memory carveout
    ENABLE_SHM_CACHE = 0x32000005
    RETURN_FROM_RPC = 0x32000003  # supplicant completes an RPC
    BOOT_SECURE_OS = 0x3F000001  # simulator-specific: install OP-TEE at boot


SmcHandler = Callable[..., Any]


class SecureMonitor:
    """Dispatches SMC calls and performs world switches.

    The monitor is deliberately tiny: it validates the function id, charges
    the transition costs, flips the CPU's security state around the secure
    handler, and restores it afterwards — even if the handler raises, since
    hardware always returns to the caller's world.
    """

    def __init__(
        self,
        cpu: Cpu,
        clock: SimClock,
        trace: TraceLog,
        costs: CostModel,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.cpu = cpu
        self.clock = clock
        self.trace = trace
        self.costs = costs
        self.metrics = metrics
        self._handlers: dict[SmcFunction, SmcHandler] = {}
        self.smc_count = 0

    def register(self, func: SmcFunction, handler: SmcHandler) -> None:
        """Install the secure-world handler for one SMC function id."""
        if func in self._handlers:
            raise SmcError(f"SMC handler already registered for {func!r}")
        self._handlers[func] = handler

    def smc(self, func: SmcFunction, *args: Any, **kwargs: Any) -> Any:
        """Execute one SMC from the normal world.

        Models the full round trip: trap to EL3, switch to secure, run the
        handler, switch back.  The handler runs with the CPU in the secure
        world, so any memory it touches passes secure-world TZASC checks.
        """
        self.cpu.require_world(World.NORMAL)
        handler = self._handlers.get(func)
        if handler is None:
            raise SmcError(f"unknown SMC function 0x{int(func):08x}")

        self.smc_count += 1
        if self.metrics is not None:
            self.metrics.inc("tz.smc")
            self.metrics.inc(f"tz.smc.{func.name.lower()}")
        self.trace.emit(self.clock.now, "tz.smc", "enter", func=func.name)
        self._transition(World.SECURE)
        try:
            return handler(*args, **kwargs)
        finally:
            self._transition(World.NORMAL)
            self.trace.emit(self.clock.now, "tz.smc", "exit", func=func.name)

    def secure_call_to_normal(self, thunk: Callable[[], Any]) -> Any:
        """Execute ``thunk`` in the normal world on behalf of secure code.

        This is the return-to-normal-world leg of an OP-TEE RPC (how the
        TEE reaches the supplicant for file/network services).  Costs are
        symmetric with :meth:`smc`.
        """
        self.cpu.require_world(World.SECURE)
        self.trace.emit(self.clock.now, "tz.rpc", "to_normal")
        self._transition(World.NORMAL)
        try:
            return thunk()
        finally:
            self._transition(World.SECURE)
            self.trace.emit(self.clock.now, "tz.rpc", "resume_secure")

    def _transition(self, target: World) -> None:
        """Charge one direction of a world switch and flip the state."""
        cycles = self.costs.full_world_switch_cycles()
        self.clock.advance(cycles, CycleDomain.MONITOR)
        self.cpu._set_world(target)
        if self.metrics is not None:
            self.metrics.inc("tz.world_switch")
            self.metrics.inc("tz.world_switch_cycles", cycles)
