"""TrustZone-aware interrupt routing (GIC model).

On TrustZone hardware the interrupt controller partitions interrupts like
the TZASC partitions memory: lines belonging to secure peripherals are
*Group 0* and delivered to the secure world as FIQs; the normal world can
neither handle nor even observe them.  This matters twice for the paper's
design:

* functionally — the secured I²S controller's overrun interrupt must
  reach the secure driver, and
* for privacy — in the baseline, the kernel sees every microphone
  interrupt and can infer *when* the user is speaking even without the
  audio (a traffic-analysis side channel); routing the line to the secure
  world closes it.

Configuration of secure lines is itself a secure-world privilege,
mirroring the GIC's banked security registers.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SecureAccessViolation, TrustZoneError
from repro.sim.clock import SimClock
from repro.sim.trace import TraceLog
from repro.tz.costs import CostModel
from repro.tz.monitor import SecureMonitor
from repro.tz.worlds import Cpu, World

IRQ_I2S = 32  # the I2S controller's interrupt line
IRQ_CAMERA = 33


@dataclass
class _Line:
    world: World
    handler: Callable[[], None]
    count: int = 0


class InterruptController:
    """Routes peripheral interrupt lines to per-world handlers."""

    def __init__(
        self,
        cpu: Cpu,
        monitor: SecureMonitor,
        clock: SimClock,
        trace: TraceLog,
        costs: CostModel,
    ):
        self._cpu = cpu
        self._monitor = monitor
        self._clock = clock
        self._trace = trace
        self._costs = costs
        self._lines: dict[int, _Line] = {}
        self.delivered: dict[World, int] = {World.NORMAL: 0, World.SECURE: 0}

    def configure(
        self, line: int, world: World, handler: Callable[[], None]
    ) -> None:
        """Assign a line to a world.

        Claiming a line for the secure world — or *stealing* one that is
        currently secure — requires the CPU to be in the secure world,
        exactly like reprogramming a TZASC partition.
        """
        existing = self._lines.get(line)
        needs_secure = world is World.SECURE or (
            existing is not None and existing.world is World.SECURE
        )
        if needs_secure and self._cpu.world is not World.SECURE:
            raise SecureAccessViolation(
                f"normal world attempted to configure interrupt line {line}"
            )
        self._lines[line] = _Line(world=world, handler=handler)
        self._trace.emit(
            self._clock.now, "tz.gic", "configure",
            line=line, world=world.value,
        )

    def observed_by(self, world: World) -> int:
        """Interrupts a given world has seen (the side-channel count)."""
        return self.delivered[world]

    def line_count(self, line: int) -> int:
        """Deliveries on one line."""
        entry = self._lines.get(line)
        return entry.count if entry else 0

    def raise_line(self, line: int) -> None:
        """Deliver one interrupt.

        The handler runs in the line's configured world; if the CPU is in
        the other world, the transition costs a full world-switch round
        trip at the monitor (FIQ trap through EL3), as on hardware.
        """
        entry = self._lines.get(line)
        if entry is None:
            raise TrustZoneError(f"spurious interrupt on unconfigured line {line}")
        entry.count += 1
        self.delivered[entry.world] += 1
        self._clock.advance(self._costs.interrupt_cycles, entry.world.domain)
        self._trace.emit(
            self._clock.now, "tz.gic", "deliver",
            line=line, world=entry.world.value,
        )
        if entry.world is self._cpu.world:
            entry.handler()
            return
        # Cross-world delivery: trap through the monitor and back.
        self._monitor._transition(entry.world)
        try:
            entry.handler()
        finally:
            self._monitor._transition(entry.world.other)
