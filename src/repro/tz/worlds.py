"""CPU worlds and security state.

ARM TrustZone partitions execution into a *normal world* (the rich OS —
Linux, its drivers, userland) and a *secure world* (OP-TEE and its trusted
applications).  The :class:`Cpu` tracks which world is currently executing
and charges its work to the matching clock domain, which is what lets the
benchmarks attribute time to each side of the partition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WorldStateError
from repro.sim.clock import CycleDomain, SimClock


class World(enum.Enum):
    """The two TrustZone security states."""

    NORMAL = "normal"
    SECURE = "secure"

    @property
    def domain(self) -> CycleDomain:
        """Clock domain work in this world is charged to."""
        if self is World.SECURE:
            return CycleDomain.SECURE_CPU
        return CycleDomain.NORMAL_CPU

    @property
    def other(self) -> "World":
        """The opposite world."""
        return World.SECURE if self is World.NORMAL else World.NORMAL


@dataclass
class Cpu:
    """A single simulated core with a TrustZone security state.

    The simulator is single-core (the Fig. 1 data path is sequential); the
    world switch is mediated by the secure monitor, which is the only
    component allowed to call :meth:`_set_world`.
    """

    clock: SimClock
    world: World = World.NORMAL
    switch_count: int = 0

    def execute(self, cycles: int) -> None:
        """Charge ``cycles`` of computation to the current world."""
        self.clock.advance(cycles, self.world.domain)

    def require_world(self, world: World) -> None:
        """Assert the CPU is currently in ``world``.

        Secure-only operations (e.g. touching the secure heap) call this to
        model the hardware rule rather than trusting callers.
        """
        if self.world is not world:
            raise WorldStateError(
                f"operation requires {world.value} world but CPU is in "
                f"{self.world.value} world"
            )

    # The monitor (and the GIC's cross-world delivery) use this; nothing
    # else should.

    def _set_world(self, world: World) -> None:
        if world is not self.world:
            self.switch_count += 1
        self.world = world
