"""Cycle cost model for TrustZone and OP-TEE operations.

The absolute values are calibrated to the published microbenchmark
literature on TrustZone/OP-TEE (world switches on Cortex-A cost on the
order of a few thousand cycles; a full GP ``InvokeCommand`` round trip
including scheduling costs tens of thousands; supplicant RPCs cost more
still because they bounce through the normal-world userland daemon).
What the reproduction relies on is the *relative ordering* — switch <
invoke < RPC — which shapes the secure-vs-baseline overhead trends the
paper anticipates in Sections III and V.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the machine, OP-TEE layer and drivers.

    All values are cycles at the machine clock frequency unless noted.
    """

    # -- world transitions -------------------------------------------------
    world_switch_cycles: int = 2_500
    """One direction of a secure<->normal switch at the monitor (bank/restore
    registers, change security state)."""

    smc_dispatch_cycles: int = 400
    """Monitor-side decode and dispatch of one SMC function id."""

    cache_maintenance_cycles: int = 1_200
    """Cache/TLB maintenance the monitor performs around a switch."""

    # -- memory traffic -----------------------------------------------------
    mem_access_base_cycles: int = 60
    """Fixed cost of one memory transaction (request setup, TZASC check)."""

    mem_cycles_per_64_bytes: int = 8
    """Streaming cost per 64-byte line moved."""

    secure_mem_penalty_cycles: int = 4
    """Extra per-line cost for secure-region traffic (TZASC lookup, no
    speculative prefetch across the partition boundary)."""

    # -- OP-TEE layer ---------------------------------------------------------
    session_open_cycles: int = 30_000
    """Open a TA session: TA load/instance checks, session setup."""

    ta_invoke_cycles: int = 8_000
    """Fixed secure-world cost of dispatching one TA command (entry
    trampoline, parameter unmarshalling), excluding the SMC/world switch."""

    pta_invoke_cycles: int = 1_500
    """TA -> PTA internal call (same world, privilege hop, no world switch)."""

    supplicant_rpc_cycles: int = 18_000
    """One secure->normal RPC to the TEE supplicant and back (two world
    switches are charged separately by the monitor; this is the queueing,
    daemon wakeup, and copy overhead)."""

    shared_mem_register_cycles: int = 3_000
    """Registering a shared-memory handle with the TEE."""

    # -- kernel side ----------------------------------------------------------
    syscall_cycles: int = 800
    """Normal-world syscall entry/exit."""

    context_switch_cycles: int = 2_000
    """Normal-world process context switch."""

    interrupt_cycles: int = 600
    """Taking and returning from one interrupt."""

    # -- driver / peripheral ---------------------------------------------------
    driver_call_cycles: int = 150
    """Average cost of one driver-internal function call's bookkeeping.
    (Used by the tracer-driven cost accounting; real work is charged
    separately per byte moved.)"""

    dma_setup_cycles: int = 900
    """Programming one DMA descriptor."""

    i2s_fifo_word_cycles: int = 4
    """Per-word cost of draining the I²S controller FIFO (PIO mode).

    With the block-based capture path the driver issues one *window read*
    per FIFO level instead of one register load per word; the bus charge
    for the burst is accounted by the memory system
    (:meth:`mem_copy_cycles` over the whole window) and this per-word
    constant covers the FIFO pop itself, charged via
    :meth:`fifo_burst_cycles`.  The split keeps PIO strictly costlier
    per word than DMA (which pays only the streaming charge) while no
    longer paying a full ``mem_access_base_cycles`` per word."""

    # -- ML inference -----------------------------------------------------------
    ml_macs_per_cycle_normal: float = 8.0
    """Multiply-accumulates per cycle for fp32 inference in the normal world
    (vectorized NEON-class throughput)."""

    ml_macs_per_cycle_secure: float = 6.0
    """Same in the secure world; slightly lower because OP-TEE TAs run
    without the full vendor BLAS and with smaller caches mapped."""

    ml_int8_speedup: float = 2.5
    """Throughput multiplier for int8-quantized inference."""

    # -- crypto / relay -----------------------------------------------------------
    crypto_cycles_per_byte: float = 12.0
    """AEAD encrypt/decrypt cost per byte (software implementation)."""

    handshake_cycles: int = 450_000
    """One TLS-like handshake (asymmetric crypto dominated)."""

    network_cycles_per_byte: float = 2.0
    """NIC + normal-world stack cost per byte sent."""

    def mem_copy_cycles(self, nbytes: int, secure: bool) -> int:
        """Cycles to move ``nbytes`` through one memory transaction."""
        lines = (nbytes + 63) // 64
        per_line = self.mem_cycles_per_64_bytes
        if secure:
            per_line += self.secure_mem_penalty_cycles
        return self.mem_access_base_cycles + lines * per_line

    def fifo_burst_cycles(self, n_words: int) -> int:
        """CPU-side cost of popping ``n_words`` in one FIFO window read.

        The bus transaction itself (setup + per-line streaming) is charged
        by the memory system when the window read goes through
        :class:`~repro.tz.memory.PhysicalMemory`; this covers the
        controller-side FIFO pops the burst performs.
        """
        return n_words * self.i2s_fifo_word_cycles

    def full_world_switch_cycles(self) -> int:
        """Total monitor cost of one direction of a world switch."""
        return (
            self.world_switch_cycles
            + self.smc_dispatch_cycles
            + self.cache_maintenance_cycles
        )

    def ml_inference_cycles(self, macs: int, secure: bool, int8: bool) -> int:
        """Cycles to execute ``macs`` multiply-accumulates of inference."""
        rate = self.ml_macs_per_cycle_secure if secure else self.ml_macs_per_cycle_normal
        if int8:
            rate *= self.ml_int8_speedup
        return max(1, int(macs / rate))


DEFAULT_COSTS = CostModel()
"""Module-level default cost model used when callers do not supply one."""
