"""Physical memory, TZASC partitioning, and secure allocation.

The TrustZone Address Space Controller (TZASC) is the hardware mechanism
that makes the paper's design sound: once a region is marked *secure*, a
normal-world access to it faults.  Porting the driver into OP-TEE only
protects peripheral data because the driver's I/O buffers live in such a
region (Fig. 1 step 3).

This module models:

* :class:`MemoryRegion` — one contiguous range with a byte backing store,
* :class:`Tzasc` — the partition table and the access check,
* :class:`PhysicalMemory` — the address-space router that performs every
  load/store, charging cycles and emitting trace events,
* :class:`MemoryAllocator` — a first-fit allocator used for both the
  normal-world heap and the OP-TEE secure heap.
"""

from __future__ import annotations

import enum
import mmap
from dataclasses import dataclass, field
from typing import Any

from repro.errors import InvalidAddressError, SecureAccessViolation
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.trace import TraceLog
from repro.tz.costs import CostModel
from repro.tz.worlds import World


class SecurityAttr(enum.Enum):
    """TZASC security attribute of a memory partition."""

    SECURE = "secure"
    NONSECURE = "nonsecure"

    def accessible_from(self, world: World) -> bool:
        """Hardware rule: secure world sees everything; normal world sees
        only non-secure partitions."""
        if self is SecurityAttr.NONSECURE:
            return True
        return world is World.SECURE


@dataclass
class MemoryRegion:
    """One contiguous physical region with a byte backing store.

    The store is an anonymous ``mmap`` rather than a ``bytearray``: the
    kernel hands out zero pages lazily, so creating a 256 MiB region
    costs microseconds instead of a quarter-second memset.  That is what
    makes per-device machine construction cheap enough to simulate
    thousands of fleet devices; reads and writes behave identically
    (slices of zeroed memory) either way.
    """

    name: str
    base: int
    size: int
    attr: SecurityAttr
    device: bool = False
    _data: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise ValueError(f"region {self.name!r} has negative base")
        if not self._data:
            self._data = mmap.mmap(-1, self.size)

    @property
    def end(self) -> int:
        """One past the last valid address."""
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        """True if ``[addr, addr+size)`` lies entirely in this region."""
        return self.base <= addr and addr + size <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        """True if this region shares any address with ``other``."""
        return self.base < other.end and other.base < self.end

    def read_raw(self, addr: int, size: int) -> bytes:
        """Read without any security check (backdoor for attack models)."""
        off = addr - self.base
        return bytes(self._data[off : off + size])

    def write_raw(self, addr: int, data: bytes) -> None:
        """Write without any security check (backdoor for attack models)."""
        off = addr - self.base
        self._data[off : off + len(data)] = data


class Tzasc:
    """The TZASC partition table.

    Regions register here with an initial attribute; secure-world software
    (and only secure-world software) may later reprogram a partition, which
    is how OP-TEE claims carveouts at boot.
    """

    def __init__(self, trace: TraceLog | None = None):
        self._attrs: dict[str, SecurityAttr] = {}
        self._trace = trace

    def register(self, region: MemoryRegion) -> None:
        """Add a partition with the region's declared attribute."""
        self._attrs[region.name] = region.attr

    def attr_of(self, region: MemoryRegion) -> SecurityAttr:
        """Current attribute of a partition."""
        return self._attrs.get(region.name, region.attr)

    def reprogram(self, region: MemoryRegion, attr: SecurityAttr, world: World) -> None:
        """Change a partition's attribute.  Secure world only.

        Raises :class:`SecureAccessViolation` if the normal world attempts
        it — on hardware the TZASC programming interface is itself a secure
        peripheral.
        """
        if world is not World.SECURE:
            raise SecureAccessViolation(
                f"normal world attempted to reprogram TZASC partition "
                f"{region.name!r}"
            )
        self._attrs[region.name] = attr
        region.attr = attr
        if self._trace is not None:
            self._trace.emit(0, "tz.tzasc", "reprogram", region=region.name, attr=attr.value)

    def check(self, region: MemoryRegion, world: World) -> None:
        """Raise :class:`SecureAccessViolation` on a forbidden access."""
        if not self.attr_of(region).accessible_from(world):
            raise SecureAccessViolation(
                f"{world.value} world access to secure region {region.name!r}"
            )


class PhysicalMemory:
    """The machine's physical address space.

    All architectural loads/stores go through :meth:`read` / :meth:`write`,
    which resolve the target region, apply the TZASC check for the acting
    world, charge memory cycles, and log a trace event.  Device regions may
    attach MMIO handlers that intercept accesses (used by the I²S
    controller's register file).
    """

    def __init__(
        self,
        clock: SimClock,
        trace: TraceLog,
        costs: CostModel,
    ):
        self.clock = clock
        self.trace = trace
        self.costs = costs
        self.tzasc = Tzasc(trace)
        self._regions: list[MemoryRegion] = []
        self._mmio_handlers: dict[str, "MmioHandler"] = {}
        self.access_count = 0
        self.violation_count = 0

    # -- topology ------------------------------------------------------------

    def add_region(self, region: MemoryRegion) -> MemoryRegion:
        """Map a region into the address space (must not overlap)."""
        for existing in self._regions:
            if existing.overlaps(region):
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self.tzasc.register(region)
        return region

    def region(self, name: str) -> MemoryRegion:
        """Look up a region by name."""
        for r in self._regions:
            if r.name == name:
                return r
        raise InvalidAddressError(f"no region named {name!r}")

    def regions(self) -> list[MemoryRegion]:
        """All mapped regions, sorted by base address."""
        return list(self._regions)

    def resolve(self, addr: int, size: int = 1) -> MemoryRegion:
        """Find the region containing ``[addr, addr+size)``."""
        for r in self._regions:
            if r.contains(addr, size):
                return r
        raise InvalidAddressError(
            f"access to unmapped address 0x{addr:x} (+{size})"
        )

    def attach_mmio(self, region_name: str, handler: "MmioHandler") -> None:
        """Attach an MMIO handler to a device region."""
        region = self.region(region_name)
        if not region.device:
            raise ValueError(f"region {region_name!r} is not a device region")
        self._mmio_handlers[region_name] = handler

    # -- architectural access ---------------------------------------------------

    def read(self, addr: int, size: int, world: World) -> bytes:
        """Architectural load with TZASC enforcement and cycle charging."""
        region = self.resolve(addr, size)
        self._check(region, world, addr, write=False)
        self._charge(size, region, world)
        handler = self._mmio_handlers.get(region.name)
        if handler is not None:
            return handler.mmio_read(addr - region.base, size)
        return region.read_raw(addr, size)

    def write(self, addr: int, data: bytes, world: World) -> None:
        """Architectural store with TZASC enforcement and cycle charging."""
        region = self.resolve(addr, len(data))
        self._check(region, world, addr, write=True)
        self._charge(len(data), region, world)
        handler = self._mmio_handlers.get(region.name)
        if handler is not None:
            handler.mmio_write(addr - region.base, data)
            return
        region.write_raw(addr, data)

    def attr_at(self, addr: int) -> SecurityAttr:
        """Security attribute of the partition containing ``addr``."""
        return self.tzasc.attr_of(self.resolve(addr))

    # -- internals ------------------------------------------------------------

    def _check(self, region: MemoryRegion, world: World, addr: int, write: bool) -> None:
        self.access_count += 1
        try:
            self.tzasc.check(region, world)
        except SecureAccessViolation:
            self.violation_count += 1
            self.trace.emit(
                self.clock.now,
                "tz.fault",
                "secure_access_violation",
                region=region.name,
                addr=addr,
                world=world.value,
                write=write,
            )
            raise

    def _charge(self, nbytes: int, region: MemoryRegion, world: World) -> None:
        secure = self.tzasc.attr_of(region) is SecurityAttr.SECURE
        cycles = self.costs.mem_copy_cycles(nbytes, secure)
        self.clock.advance(cycles, world.domain)


class MmioHandler:
    """Interface for device register files mapped into a device region."""

    def mmio_read(self, offset: int, size: int) -> bytes:  # pragma: no cover - interface
        raise NotImplementedError

    def mmio_write(self, offset: int, data: bytes) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class _Allocation:
    offset: int
    size: int


class MemoryAllocator:
    """First-fit allocator over one region.

    Used for the normal-world heap and — with a deliberately small region —
    the OP-TEE secure heap, so 'model does not fit in the TEE' is a real,
    observable failure mode (paper Section V).
    """

    def __init__(self, region: MemoryRegion, align: int = 64):
        self.region = region
        self.align = align
        self._allocs: dict[int, _Allocation] = {}  # base addr -> allocation

    @property
    def total_bytes(self) -> int:
        """Capacity of the managed region."""
        return self.region.size

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(a.size for a in self._allocs.values())

    @property
    def free_bytes(self) -> int:
        """Bytes not currently allocated (may be fragmented)."""
        return self.total_bytes - self.used_bytes

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the physical base address.

        Raises :class:`MemoryError` when no free gap fits (callers in the
        OP-TEE layer translate this to ``TeeOutOfMemory``).
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        size = (size + self.align - 1) // self.align * self.align
        cursor = 0
        for off in sorted(a.offset for a in self._allocs.values()):
            alloc = next(a for a in self._allocs.values() if a.offset == off)
            if off - cursor >= size:
                break
            cursor = off + alloc.size
        if cursor + size > self.region.size:
            raise MemoryError(
                f"allocator for {self.region.name!r} exhausted: "
                f"need {size}, free {self.free_bytes} (fragmented)"
            )
        addr = self.region.base + cursor
        self._allocs[addr] = _Allocation(cursor, size)
        return addr

    def free(self, addr: int) -> None:
        """Release an allocation by its base address."""
        if addr not in self._allocs:
            raise ValueError(f"free of unallocated address 0x{addr:x}")
        del self._allocs[addr]

    def owns(self, addr: int) -> bool:
        """True if ``addr`` is the base of a live allocation."""
        return addr in self._allocs
