"""ARM TrustZone machine model.

This package substitutes for the NVIDIA Jetson AGX Xavier's TrustZone-enabled
ARMv8.2 CPU (see DESIGN.md, substitution table).  It models the parts of the
architecture that the paper's security argument rests on:

* two *worlds* (secure / normal) with a current security state per CPU,
* a TZASC-style partitioning of physical memory into secure and non-secure
  regions, enforced on every access,
* a secure monitor (EL3) that owns world switches, dispatched via SMC, and
* a cost model charging cycles for switches, SMCs and memory traffic so the
  paper's anticipated performance trade-offs are measurable.
"""

from repro.tz.costs import CostModel
from repro.tz.machine import MachineConfig, TrustZoneMachine
from repro.tz.memory import (
    MemoryAllocator,
    MemoryRegion,
    PhysicalMemory,
    SecurityAttr,
    Tzasc,
)
from repro.tz.monitor import SecureMonitor, SmcFunction
from repro.tz.worlds import Cpu, World

__all__ = [
    "CostModel",
    "Cpu",
    "MachineConfig",
    "MemoryAllocator",
    "MemoryRegion",
    "PhysicalMemory",
    "SecureMonitor",
    "SecurityAttr",
    "SmcFunction",
    "TrustZoneMachine",
    "Tzasc",
    "World",
]
