"""The composed TrustZone machine.

:class:`TrustZoneMachine` wires together the clock, trace log, physical
memory with TZASC, a CPU, and the secure monitor, and lays out a memory map
patterned on the Jetson AGX Xavier class of devices:

========================  ==========  ========  =========
region                    base        size      attribute
========================  ==========  ========  =========
``dram_ns``               0x80000000  256 MiB   non-secure
``shmem``                 0xFE000000    8 MiB   non-secure (TEE shared mem)
``dram_secure``           0xF0000000   32 MiB   secure (OP-TEE carveout)
``secure_heap``           0xF2000000   16 MiB   secure (TA heap, small!)
``mmio``                  0x03000000   16 MiB   device
========================  ==========  ========  =========

The secure heap is deliberately small: the paper's Section V names limited
TEE memory as the binding constraint on in-enclave ML, and experiments T3
and T5 measure against this budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import Observability
from repro.sim.clock import SimClock
from repro.sim.config import SimConfig
from repro.sim.rng import SimRng
from repro.sim.trace import TraceLog
from repro.tz.costs import CostModel
from repro.tz.memory import (
    MemoryAllocator,
    MemoryRegion,
    PhysicalMemory,
    SecurityAttr,
)
from repro.tz.monitor import SecureMonitor
from repro.tz.worlds import Cpu, World

MIB = 1024 * 1024


@dataclass
class MachineConfig:
    """Sizes and costs for one machine instance."""

    dram_ns_bytes: int = 256 * MIB
    shmem_bytes: int = 8 * MIB
    dram_secure_bytes: int = 32 * MIB
    secure_heap_bytes: int = 16 * MIB
    mmio_bytes: int = 16 * MIB
    costs: CostModel = field(default_factory=CostModel)
    sim: SimConfig = field(default_factory=SimConfig)


class TrustZoneMachine:
    """A booted TrustZone platform, ready for an OS in each world."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.clock: SimClock = self.config.sim.build_clock()
        self.trace: TraceLog = self.config.sim.build_trace()
        self.rng: SimRng = self.config.sim.build_rng()
        self.costs: CostModel = self.config.costs

        self.memory = PhysicalMemory(self.clock, self.trace, self.costs)
        self.dram_ns = self.memory.add_region(
            MemoryRegion("dram_ns", 0x8000_0000, self.config.dram_ns_bytes,
                         SecurityAttr.NONSECURE)
        )
        self.shmem = self.memory.add_region(
            MemoryRegion("shmem", 0xFE00_0000, self.config.shmem_bytes,
                         SecurityAttr.NONSECURE)
        )
        self.dram_secure = self.memory.add_region(
            MemoryRegion("dram_secure", 0xF000_0000, self.config.dram_secure_bytes,
                         SecurityAttr.SECURE)
        )
        self.secure_heap_region = self.memory.add_region(
            MemoryRegion("secure_heap", 0xF200_0000, self.config.secure_heap_bytes,
                         SecurityAttr.SECURE)
        )
        self.mmio = self.memory.add_region(
            MemoryRegion("mmio", 0x0300_0000, self.config.mmio_bytes,
                         SecurityAttr.NONSECURE, device=True)
        )

        self.cpu = Cpu(self.clock)
        self.obs = Observability(self.clock, self.trace, self.cpu)
        self.monitor = SecureMonitor(self.cpu, self.clock, self.trace, self.costs,
                                     metrics=self.obs.metrics)
        from repro.tz.interrupts import InterruptController

        self.gic = InterruptController(
            self.cpu, self.monitor, self.clock, self.trace, self.costs
        )

        # Allocators over the general-purpose regions.
        self.ns_allocator = MemoryAllocator(self.dram_ns)
        self.shmem_allocator = MemoryAllocator(self.shmem)
        self.secure_allocator = MemoryAllocator(self.dram_secure)
        self.secure_heap = MemoryAllocator(self.secure_heap_region)

        # Secure-world chaos injector; installed by the platform when a
        # SecureFaultConfig is supplied, None on a healthy machine.  Hook
        # points (OP-TEE dispatch, secure heap, DMA, sealed storage) probe
        # it so that with no injector — or all rates zero — their fast
        # path is a single attribute check.
        self.secure_faults = None

    # -- convenience -----------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Load as the *current* world."""
        return self.memory.read(addr, size, self.cpu.world)

    def write(self, addr: int, data: bytes) -> None:
        """Store as the *current* world."""
        self.memory.write(addr, data, self.cpu.world)

    def secure_peripheral(self, region: MemoryRegion) -> None:
        """Move a peripheral's partition to the secure world.

        This is step 1 of the paper's design: the I²S controller and the
        driver's I/O buffers become inaccessible to the untrusted OS.  Must
        be invoked while the CPU is in the secure world (OP-TEE boot or a
        PTA), matching the hardware programming model.
        """
        self.memory.tzasc.reprogram(region, SecurityAttr.SECURE, self.cpu.world)

    def world(self) -> World:
        """Current CPU world."""
        return self.cpu.world

    def summary(self) -> dict:
        """Machine counters for reports and tests."""
        return {
            "cycles": self.clock.now,
            "seconds": self.clock.now_seconds,
            "world_switches": self.cpu.switch_count,
            "smc_calls": self.monitor.smc_count,
            "mem_accesses": self.memory.access_count,
            "tzasc_violations": self.memory.violation_count,
        }
