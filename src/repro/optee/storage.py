"""Secure storage (REE-FS model).

OP-TEE's default secure storage keeps objects on the *normal-world*
filesystem, sealed under a key derived from the device's hardware unique
key, so the untrusted OS holds only ciphertext.  We reproduce that shape:
:meth:`SecureStorage.put` seals an object and ships it to the supplicant's
filesystem via RPC; :meth:`get` fetches and unseals it, failing loudly if
the normal world tampered with the blob.

The pipeline uses this to persist the classifier's model weights, so a
device reboot does not require re-provisioning — and so the tests can show
that at-rest model data is unreadable to the normal world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.crypto.aead import StreamAead
from repro.crypto.kdf import derive_key
from repro.errors import TeeItemNotFound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.os import OpTeeOs

# The device's hardware unique key.  On silicon this is fused and readable
# only by the secure world; in the simulator it is a constant the normal
# world has no code path to.
_HARDWARE_UNIQUE_KEY = bytes.fromhex(
    "a7f3b2c1d4e5f60718293a4b5c6d7e8f9aabbccddeeff00112233445566778899"[:64]
)
_STORE_PREFIX = "tee/objects/"


class SecureStorage:
    """Sealed object store for TAs, backed by the untrusted filesystem."""

    def __init__(self, os: "OpTeeOs"):
        self._os = os
        self._aead = StreamAead(derive_key(_HARDWARE_UNIQUE_KEY, "ree-fs-sealing"))
        self._nonce_counter = 0
        # Secure-side shadow of the object index (REE-FS keeps a sealed
        # "dirfile" for the same reason): TAs can enumerate their objects
        # without paying an RPC round trip or trusting the normal world's
        # answer.  The blobs themselves stay authoritative in the
        # supplicant fs — tampering there still fails loudly on access.
        self._index: set[str] = set()

    def _path(self, name: str) -> str:
        return _STORE_PREFIX + name

    def _next_nonce(self) -> bytes:
        self._nonce_counter += 1
        return self._nonce_counter.to_bytes(12, "little")

    def put(self, name: str, data: bytes) -> None:
        """Seal ``data`` and persist it under ``name``.

        The bytes that reach the supplicant are nonce-prefixed ciphertext;
        the object name is bound as associated data so blobs cannot be
        swapped between names undetected.
        """
        nonce = self._next_nonce()
        sealed = nonce + self._aead.seal(nonce, data, aad=name.encode())
        self._charge(len(sealed))
        self._os.supplicant_rpc("fs", "write", self._path(name), sealed)
        self._index.add(name)

    def get(self, name: str) -> bytes:
        """Fetch and unseal the object ``name``.

        Raises :class:`TeeItemNotFound` if absent and
        :class:`~repro.errors.AuthenticationFailure` if the normal world
        modified the blob.
        """
        if not self._os.supplicant_rpc("fs", "exists", self._path(name)):
            raise TeeItemNotFound(f"no secure object {name!r}")
        sealed = self._os.supplicant_rpc("fs", "read", self._path(name))
        # Injected ``storage`` faults corrupt only this read's copy —
        # transient normal-world fs flakiness, not tampering at rest — so
        # the AEAD rejects it now but a retry can still succeed.
        faults = self._os.machine.secure_faults
        if faults is not None and faults.fires("storage"):
            sealed = faults.corrupt(sealed)
        self._charge(len(sealed))
        nonce, body = sealed[:12], sealed[12:]
        return self._aead.open(nonce, body, aad=name.encode())

    def delete(self, name: str) -> None:
        """Remove the object (no error if absent)."""
        self._os.supplicant_rpc("fs", "delete", self._path(name))
        self._index.discard(name)

    def exists(self, name: str) -> bool:
        """True if an object is persisted under ``name``."""
        return bool(self._os.supplicant_rpc("fs", "exists", self._path(name)))

    def names(self) -> list[str]:
        """Object names from the secure-side index (no supplicant RPC)."""
        return sorted(self._index)

    def list(self) -> list[str]:
        """Names of all persisted objects."""
        paths = self._os.supplicant_rpc("fs", "list", _STORE_PREFIX)
        return [p[len(_STORE_PREFIX):] for p in paths]

    def _charge(self, nbytes: int) -> None:
        costs = self._os.machine.costs
        self._os.machine.cpu.execute(int(nbytes * costs.crypto_cycles_per_byte))
