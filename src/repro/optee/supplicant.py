"""The TEE supplicant: OP-TEE's normal-world service daemon.

The secure world has no filesystem or network stack of its own; when a TA
needs either, OP-TEE performs an RPC that returns control to this
normal-world daemon (Fig. 1 steps 6–7: the relay module "leverages an
OP-TEE user space daemon called the TEE supplicant to provide OS-level
services such as network communication").

The daemon is intentionally *untrusted*: every byte it handles is visible
to the normal world and therefore to the attack models.  The secure side
defends itself by only handing the supplicant sealed storage blobs and TLS
ciphertext — a property the security tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from repro.errors import TeeCommunicationError
from repro.tz.machine import TrustZoneMachine
from repro.tz.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import FaultInjector


class SupplicantService(Protocol):
    """A named service the supplicant can route to."""

    def call(self, method: str, *args: Any) -> Any:  # pragma: no cover - protocol
        ...


class RamFileSystem:
    """In-memory filesystem service (backs REE-FS secure storage)."""

    def __init__(self) -> None:
        self.files: dict[str, bytes] = {}
        self.read_count = 0
        self.write_count = 0

    def call(self, method: str, *args: Any) -> Any:
        """Dispatch ``read|write|delete|exists|list`` operations."""
        if method == "write":
            path, data = args
            self.files[path] = bytes(data)
            self.write_count += 1
            return len(data)
        if method == "read":
            (path,) = args
            self.read_count += 1
            if path not in self.files:
                raise TeeCommunicationError(f"no such file: {path!r}")
            return self.files[path]
        if method == "delete":
            (path,) = args
            self.files.pop(path, None)
            return None
        if method == "exists":
            (path,) = args
            return path in self.files
        if method == "list":
            (prefix,) = args
            return sorted(p for p in self.files if p.startswith(prefix))
        raise TeeCommunicationError(f"fs: unknown method {method!r}")


class NetworkService:
    """In-memory socket service connecting the supplicant to endpoints.

    Endpoints (e.g. the simulated cloud) register under ``(host, port)``;
    ``send`` delivers bytes and returns the endpoint's reply.  All traffic
    is observable via :attr:`wire_log` — the vantage point of a network
    eavesdropper and of the untrusted OS.

    The network is part of the threat model's untrusted surface, so the
    service accepts a :class:`~repro.sim.faults.FaultInjector` that makes
    sends fail deterministically (refused, dropped in transit, corrupted
    reply, added latency).  Faults are modelled at the point a real network
    fails — *after* the secure side has already sealed the payload — so
    even injected failures never expose plaintext.
    """

    def __init__(self, machine: TrustZoneMachine | None = None) -> None:
        self._machine = machine
        self._endpoints: dict[tuple[str, int], Any] = {}
        self.faults: "FaultInjector | None" = None
        self.wire_log: list[bytes] = []
        self.bytes_sent = 0
        self.sends_failed = 0

    def register_endpoint(self, host: str, port: int, endpoint: Any) -> None:
        """Expose an endpoint object with a ``receive(bytes) -> bytes`` method."""
        self._endpoints[(host, port)] = endpoint

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Install (or clear) the deterministic fault injector."""
        self.faults = injector

    def call(self, method: str, *args: Any) -> Any:
        """Dispatch ``send`` operations."""
        if method == "send":
            host, port, payload = args
            fault = self.faults.next_fault() if self.faults is not None else None
            if fault == "refuse":
                self.sends_failed += 1
                raise TeeCommunicationError(
                    f"connection refused (injected): {host}:{port}"
                )
            endpoint = self._endpoints.get((host, port))
            if endpoint is None:
                raise TeeCommunicationError(f"connection refused: {host}:{port}")
            payload = bytes(payload)
            self.wire_log.append(payload)
            self.bytes_sent += len(payload)
            if fault == "drop":
                # The ciphertext reached the wire but never the endpoint;
                # the sender only observes a timeout.
                self.sends_failed += 1
                raise TeeCommunicationError(
                    f"send timed out (injected drop): {host}:{port}"
                )
            reply = endpoint.receive(payload)
            if fault == "corrupt":
                assert self.faults is not None
                self.sends_failed += 1
                reply = self.faults.corrupt(bytes(reply))
            elif fault == "latency" and self._machine is not None:
                self._machine.cpu.execute(self.faults.config.latency_cycles)
            return reply
        raise TeeCommunicationError(f"net: unknown method {method!r}")


class TimeService:
    """Wall-clock service backed by the simulation clock."""

    def __init__(self, machine: TrustZoneMachine):
        self._machine = machine

    def call(self, method: str, *args: Any) -> Any:
        """Dispatch ``now`` (simulated seconds)."""
        if method == "now":
            return self._machine.clock.now_seconds
        raise TeeCommunicationError(f"time: unknown method {method!r}")


class TeeSupplicant:
    """The normal-world daemon routing TEE RPCs to services."""

    def __init__(self, machine: TrustZoneMachine):
        self._machine = machine
        self.fs = RamFileSystem()
        self.net = NetworkService(machine)
        self.time = TimeService(machine)
        self._services: dict[str, SupplicantService] = {
            "fs": self.fs,
            "net": self.net,
            "time": self.time,
        }
        self.handled = 0

    def register_service(self, name: str, service: SupplicantService) -> None:
        """Add or replace a named service."""
        self._services[name] = service

    def handle(self, service: str, method: str, *args: Any) -> Any:
        """Route one RPC.  Runs in the normal world (the monitor guarantees it)."""
        self._machine.cpu.require_world(World.NORMAL)
        self._machine.cpu.execute(self._machine.costs.context_switch_cycles)
        target = self._services.get(service)
        if target is None:
            raise TeeCommunicationError(f"supplicant: unknown service {service!r}")
        self.handled += 1
        self._machine.obs.metrics.inc(f"supplicant.{service}.{method}")
        self._machine.trace.emit(
            self._machine.clock.now, "optee.supplicant", "handle",
            service=service, method=method,
        )
        return target.call(method, *args)
