"""TA supervision: detect panics, restart, resume from checkpoints.

A panicked TA is terminal in stock OP-TEE — every live session dies and
each further invocation raises :class:`~repro.errors.TeeTargetDead`.  An
always-on voice device cannot afford that, so this module adds the piece
a real deployment runs in its management daemon: a :class:`TaSupervisor`
that owns the client session, watches invocations for ``TeeTargetDead``,
reaps the dead instance (:meth:`~repro.optee.os.OpTeeOs.reap_panicked`
releases the heap the panicked TA can no longer free), and re-opens the
session with capped exponential backoff — which re-instantiates the TA,
whose ``on_create`` restores its state from sealed checkpoints.

Two failure budgets nest here:

* **per restart** — :attr:`SupervisorPolicy.max_restart_attempts` opens
  with backoff (a restart attempt can itself be hit by injected faults);
* **per invocation** — :attr:`SupervisorPolicy.max_invoke_attempts`
  process attempts for one utterance, each preceded by recovery if the
  TA is down.

When both are exhausted :meth:`TaSupervisor.invoke` returns ``None`` —
the *fail-closed degraded* signal: the pipeline suppresses the utterance
as sensitive rather than ever forwarding anything unfiltered.

Determinism: backoff jitter comes from a dedicated RNG fork that is only
drawn when a restart actually backs off, so a run with zero injected
faults consumes no randomness here and stays byte-identical to an
unsupervised run of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import TeeError, TeeOutOfMemory, TeeTargetDead

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable

    from repro.optee.client import ClientSession, TeeClient
    from repro.optee.os import OpTeeOs
    from repro.optee.params import Params
    from repro.optee.uuid import TaUuid
    from repro.sim.rng import SimRng


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart/backoff budgets for one supervised TA.

    ``checkpoint_every`` is forwarded to the TA factory: the TA seals a
    checkpoint every N committed decisions; the supervisor itself only
    needs it to size the dialog-cursor safety margin on restore.
    """

    max_restart_attempts: int = 5
    max_invoke_attempts: int = 3
    backoff_base_cycles: int = 100_000
    backoff_multiplier: float = 2.0
    backoff_cap_cycles: int = 1_600_000
    jitter_fraction: float = 0.25
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.max_restart_attempts < 1:
            raise ValueError("max_restart_attempts must be at least 1")
        if self.max_invoke_attempts < 1:
            raise ValueError("max_invoke_attempts must be at least 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")

    def backoff_cycles(self, attempt: int, rng: "SimRng") -> int:
        """Cycles to wait before restart attempt ``attempt`` (1-based)."""
        base = min(
            self.backoff_cap_cycles,
            self.backoff_base_cycles * self.backoff_multiplier ** (attempt - 1),
        )
        return int(base * (1.0 + self.jitter_fraction * rng.random()))


class TaSupervisor:
    """Owns one TA session and keeps it alive across panics.

    The supervisor is normal-world management code: it holds no secrets
    and sees no data — it only reopens sessions.  All state *restoration*
    happens inside the TEE (the TA's own checkpoint restore), so
    supervision adds nothing to the attack surface.
    """

    def __init__(
        self,
        tee: "OpTeeOs",
        client: "TeeClient",
        ta_uuid: "TaUuid",
        policy: SupervisorPolicy | None = None,
        rng: "SimRng | None" = None,
    ):
        self._tee = tee
        self._client = client
        self._uuid = ta_uuid
        self.policy = policy or SupervisorPolicy()
        self._rng = rng.fork("backoff") if rng is not None else None
        self.session: "ClientSession | None" = None
        self._dead = True
        self._death_cycle: int | None = None
        self.restarts = 0
        self.restart_failures = 0
        self.panics_seen = 0
        self.transient_errors = 0
        self.degraded_invokes = 0

    @property
    def _machine(self):
        return self._tee.machine

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "ClientSession":
        """Open the initial session (raises on failure, like an app boot)."""
        self.session = self._client.open_session(self._uuid)
        self._dead = False
        return self.session

    def close(self) -> None:
        """Close the session if the TA is still alive."""
        if self.session is not None and not self._dead:
            try:
                self.session.close()
            except TeeTargetDead:
                self._dead = True

    # -- supervised invocation ---------------------------------------------

    def invoke(
        self,
        cmd: int,
        params: "Params | None" = None,
        reprime: "Callable[[], None] | None" = None,
    ) -> Any:
        """Invoke ``cmd`` with panic recovery; ``None`` = degraded.

        ``reprime`` re-establishes client-side preconditions before every
        attempt (e.g. re-swapping the mic source so a restarted capture
        reads this utterance's PCM, not leftovers).  Returns the TA's
        result, or ``None`` once every restart and invoke budget is
        spent — the caller must then fail closed.
        """
        for _ in range(self.policy.max_invoke_attempts):
            if self._dead and not self._recover():
                break
            if reprime is not None:
                reprime()
            assert self.session is not None
            try:
                return self.session.invoke(cmd, params)
            except TeeTargetDead:
                self._note_death()
            except TeeOutOfMemory:
                # Transient pressure: the TA survived, retry on the same
                # session (the next attempt re-primes and re-draws).
                self.transient_errors += 1
                self._machine.obs.metrics.inc("tee.transient_errors")
        self.degraded_invokes += 1
        return None

    # -- internals ----------------------------------------------------------

    def _note_death(self) -> None:
        self._dead = True
        self.panics_seen += 1
        self._death_cycle = self._machine.clock.now
        self._machine.trace.emit(
            self._machine.clock.now, "optee.supervisor", "ta_dead",
            uuid=str(self._uuid), panics=self.panics_seen,
        )

    def _recover(self) -> bool:
        """Reap + reopen with capped exponential backoff.

        Measures detection→recovered into ``tee.recovery_cycles`` and
        brackets the whole thing in a ``ta_restart`` span so the flight
        recorder captures what recovery actually did.
        """
        machine = self._machine
        start = (
            self._death_cycle
            if self._death_cycle is not None
            else machine.clock.now
        )
        with machine.obs.span("ta_restart", category="recovery",
                              panics=self.panics_seen):
            for attempt in range(1, self.policy.max_restart_attempts + 1):
                machine.obs.metrics.inc("tee.restart_attempts")
                if attempt > 1 and self._rng is not None:
                    delay = self.policy.backoff_cycles(attempt - 1, self._rng)
                    with machine.obs.span("restart_backoff",
                                          category="recovery",
                                          attempt=attempt):
                        machine.cpu.execute(delay)
                self._tee.reap_panicked(self._uuid)
                try:
                    self.session = self._client.open_session(self._uuid)
                except TeeError as exc:
                    # The restart itself was hit (injected panic in
                    # on_create, heap exhaustion, corrupt checkpoint
                    # cascade...) — back off and try again.
                    self.restart_failures += 1
                    machine.trace.emit(
                        machine.clock.now, "optee.supervisor",
                        "restart_failed",
                        attempt=attempt, error=type(exc).__name__,
                    )
                    continue
                self._dead = False
                self.restarts += 1
                machine.obs.metrics.inc("tee.restarts")
                machine.obs.metrics.observe(
                    "tee.recovery_cycles", machine.clock.now - start
                )
                machine.trace.emit(
                    machine.clock.now, "optee.supervisor", "ta_restarted",
                    attempt=attempt, recovery_cycles=machine.clock.now - start,
                )
                return True
        return False

    def summary(self) -> dict[str, int]:
        """Supervision counters for reports and tests."""
        return {
            "restarts": self.restarts,
            "restart_failures": self.restart_failures,
            "panics_seen": self.panics_seen,
            "transient_errors": self.transient_errors,
            "degraded_invokes": self.degraded_invokes,
        }
