"""TA image signing and verification.

On real OP-TEE, trusted applications ship as signed binaries and the TEE
refuses to load anything the embedded public key does not vouch for —
without this, the 'trusted' in TA is circular.  The simulator's analogue
signs a TA class's identity and code: the UUID, name, flags, and a digest
of the Python source of the class (the closest stand-in for the binary
image — any edit to the TA's code invalidates the signature).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import inspect

from repro.crypto.kdf import hmac_sha256
from repro.errors import TeeSecurityError
from repro.optee.ta import TrustedApplication


def ta_image_digest(ta_class: type[TrustedApplication]) -> bytes:
    """Digest of a TA's 'binary image' (identity + source code).

    Dynamically created classes (factories like ``make_audio_filter_ta``)
    may not expose retrievable source; their closure variables are part of
    the image, so the digest falls back to the qualified name plus the
    factory cell contents' reprs — still change-detecting for weights and
    configuration baked into the closure.
    """
    probe = ta_class()
    parts = [probe.NAME.encode(), probe.uuid.bytes, str(probe.FLAGS).encode()]
    try:
        parts.append(inspect.getsource(ta_class).encode())
    except (OSError, TypeError):
        parts.append(ta_class.__qualname__.encode())
    # Factory-built TA classes carry configuration (weights, endpoints)
    # in their methods' closures; those are part of the image.  reprs are
    # stable within a process, which is the lifetime of this simulated
    # device — a production implementation would hash the serialized
    # payloads instead.
    for attr in vars(ta_class).values():
        closure = getattr(attr, "__closure__", None)
        if closure:
            parts.extend(
                repr(cell.cell_contents).encode() for cell in closure
            )
    return hashlib.sha256(b"\x00".join(parts)).digest()


def sign_ta(ta_class: type[TrustedApplication], signing_key: bytes) -> bytes:
    """Vendor side: produce the load signature for a TA class."""
    return hmac_sha256(signing_key, b"ta-image-v1" + ta_image_digest(ta_class))


def verify_ta(
    ta_class: type[TrustedApplication],
    signature: bytes,
    verification_key: bytes,
) -> None:
    """TEE side: raise :class:`TeeSecurityError` unless the signature holds."""
    expect = sign_ta(ta_class, verification_key)
    if not _hmac.compare_digest(expect, signature):
        probe = ta_class()
        raise TeeSecurityError(
            f"TA {probe.NAME!r} failed image verification; refusing to load"
        )
