"""Pseudo trusted applications (PTAs).

A PTA is the paper's bridge between userland TAs and low-level secure code
(Section II): "a secure module with OS-level privileges that could serve as
an intermediary between a TA (no OS-level privileges) and low-level code
like device driver software."

Accordingly, a :class:`PtaContext` is strictly more powerful than a
``TaContext``: it can touch physical memory directly, reprogram TZASC
partitions, and host device-driver instances.  Only code running in the
secure world may invoke a PTA, and the TEE OS records the caller for
auditing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import TeeAccessDenied
from repro.optee.uuid import TaUuid
from repro.tz.memory import MemoryRegion
from repro.tz.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.os import OpTeeOs
    from repro.optee.ta import TrustedApplication


class PtaContext:
    """OS-level capabilities granted to a PTA."""

    def __init__(self, os: "OpTeeOs", pta: "PseudoTa"):
        self._os = os
        self._pta = pta

    @property
    def machine(self):
        """The underlying TrustZone machine (full access)."""
        return self._os.machine

    def compute(self, cycles: int) -> None:
        """Charge secure-world computation."""
        self._os.machine.cpu.execute(cycles)

    def read_phys(self, addr: int, size: int) -> bytes:
        """Read physical memory as the secure world."""
        self._os.machine.cpu.require_world(World.SECURE)
        return self._os.machine.memory.read(addr, size, World.SECURE)

    def write_phys(self, addr: int, data: bytes) -> None:
        """Write physical memory as the secure world."""
        self._os.machine.cpu.require_world(World.SECURE)
        self._os.machine.memory.write(addr, data, World.SECURE)

    def claim_region(self, region: MemoryRegion) -> None:
        """Reprogram a partition to secure (e.g. a peripheral's MMIO/buffers)."""
        self._os.machine.secure_peripheral(region)

    def alloc_secure(self, size: int) -> int:
        """Allocate from the secure DRAM carveout (driver I/O buffers)."""
        return self._os.machine.secure_allocator.alloc(size)

    def free_secure(self, addr: int) -> None:
        """Release a carveout allocation."""
        self._os.machine.secure_allocator.free(addr)

    def log(self, name: str, **data: Any) -> None:
        """Emit a PTA-scoped trace event."""
        self._os.machine.trace.emit(
            self._os.machine.clock.now, f"optee.pta.{self._pta.name}", name, **data
        )


class PseudoTa:
    """Base class for PTAs.  Subclasses implement :meth:`on_invoke`."""

    NAME = "pta.base"
    UUID: TaUuid | None = None

    def __init__(self) -> None:
        self.name = self.NAME
        self.uuid = self.UUID or TaUuid.from_name(self.NAME)
        self.ctx: PtaContext | None = None
        self.invoke_count = 0

    def on_register(self, ctx: PtaContext) -> None:
        """Called when the TEE OS registers this PTA (its boot hook)."""
        self.ctx = ctx

    def on_invoke(
        self, cmd: int, payload: Any, caller: "TrustedApplication | None"
    ) -> Any:
        """Handle one command from a TA (or from the TEE OS itself)."""
        raise NotImplementedError(f"{self.name} does not handle command {cmd}")

    def require_caller(self, caller: "TrustedApplication | None") -> None:
        """Reject invocations that did not come from a TA.

        PTAs exposing driver I/O use this so the secure data path is only
        reachable through the designed TA pipeline.
        """
        if caller is None:
            raise TeeAccessDenied(
                f"PTA {self.name!r} requires a TA caller for this command"
            )
