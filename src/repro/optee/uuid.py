"""GlobalPlatform-style TA identifiers.

Every TA and PTA is addressed by a UUID.  We keep the canonical textual
form and add a deterministic derivation from a name so tests and examples
can mint stable identifiers without hardcoding hex blobs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class TaUuid:
    """A 128-bit TA identifier in canonical 8-4-4-4-12 text form."""

    text: str

    def __post_init__(self) -> None:
        parts = self.text.split("-")
        lengths = [len(p) for p in parts]
        if lengths != [8, 4, 4, 4, 12]:
            raise ValueError(f"malformed TA UUID: {self.text!r}")
        int(self.text.replace("-", ""), 16)  # raises if not hex

    @classmethod
    def from_name(cls, name: str) -> "TaUuid":
        """Derive a stable UUID from a human-readable name."""
        h = hashlib.sha256(name.encode()).hexdigest()
        text = f"{h[0:8]}-{h[8:12]}-{h[12:16]}-{h[16:20]}-{h[20:32]}"
        return cls(text)

    @property
    def bytes(self) -> bytes:
        """The raw 16 bytes."""
        return bytes.fromhex(self.text.replace("-", ""))

    def __str__(self) -> str:
        return self.text
