"""Command parameters for TA/PTA invocation.

GlobalPlatform commands carry up to four typed parameters: small value
pairs or references into shared memory.  We model both, because the
distinction matters for the reproduction: a :class:`MemRef` into *non-secure*
shared memory is visible to the untrusted OS (and to the attack models),
while data passed secure-side between a TA and a PTA never leaves the
secure world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.errors import TeeBadParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.client import SharedMemory

MAX_PARAMS = 4


@dataclass
class Value:
    """A pair of 32-bit scalars (``a``, ``b``), in/out by convention."""

    a: int = 0
    b: int = 0

    def __post_init__(self) -> None:
        for name, v in (("a", self.a), ("b", self.b)):
            if not 0 <= v < 2**32:
                raise TeeBadParameters(f"Value.{name}={v} not a u32")


@dataclass
class MemRef:
    """A reference into a registered shared-memory object.

    ``shm`` is normal-world shared memory; the secure side reads and writes
    it through the machine's physical memory (so cycle costs and TZASC
    checks apply).
    """

    shm: "SharedMemory"
    offset: int = 0
    size: int | None = None

    def __post_init__(self) -> None:
        if self.size is None:
            self.size = self.shm.size - self.offset
        if self.offset < 0 or self.offset + self.size > self.shm.size:
            raise TeeBadParameters(
                f"memref [{self.offset}, {self.offset + self.size}) outside "
                f"shared memory of {self.shm.size} bytes"
            )


Param = Union[Value, MemRef, None]


@dataclass
class Params:
    """Up to four typed parameters for one command invocation."""

    slots: list[Param] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.slots) > MAX_PARAMS:
            raise TeeBadParameters(
                f"at most {MAX_PARAMS} parameters allowed, got {len(self.slots)}"
            )
        self.slots = list(self.slots) + [None] * (MAX_PARAMS - len(self.slots))

    def value(self, index: int) -> Value:
        """The :class:`Value` in slot ``index`` (typed accessor)."""
        p = self.slots[index]
        if not isinstance(p, Value):
            raise TeeBadParameters(f"param {index} is not a Value: {p!r}")
        return p

    def memref(self, index: int) -> MemRef:
        """The :class:`MemRef` in slot ``index`` (typed accessor)."""
        p = self.slots[index]
        if not isinstance(p, MemRef):
            raise TeeBadParameters(f"param {index} is not a MemRef: {p!r}")
        return p

    @classmethod
    def of(cls, *slots: Param) -> "Params":
        """Build from positional parameters."""
        return cls(list(slots))
