"""The TEE OS kernel.

:class:`OpTeeOs` is the secure-world operating system: it installs the SMC
handlers at the monitor (its "boot"), hosts TA instances and sessions,
registers PTAs, owns the secure heap, and brokers supplicant RPCs.  It is
the component that turns the raw TrustZone machine into the platform the
paper's design runs on.

Dispatch model
--------------
The normal-world client library packages each request (open / invoke /
close) and issues ``OPTEE_SMC_CALL_WITH_ARG``.  The monitor switches the
CPU to the secure world and calls :meth:`OpTeeOs._handle_call`, which
dispatches to the target TA with the CPU *already* in the secure world —
so all TA memory traffic is checked and charged as secure-world traffic.

Panic semantics
---------------
If a TA hook raises an unexpected exception the TA is *panicked*: all its
sessions die and subsequent invocations raise :class:`TeeTargetDead`,
mirroring OP-TEE.  ``TeeError`` subclasses raised by the TA pass through
unchanged — they are the GP status codes of the API contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import (
    TeeBusy,
    TeeCommunicationError,
    TeeError,
    TeeItemNotFound,
    TeeTargetDead,
)
from repro.optee.heap import SecureHeap
from repro.optee.params import Params
from repro.optee.pta import PseudoTa, PtaContext
from repro.optee.session import Session
from repro.optee.ta import TaContext, TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.tz.machine import TrustZoneMachine
from repro.tz.monitor import SmcFunction
from repro.tz.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.storage import SecureStorage
    from repro.optee.supplicant import TeeSupplicant


class OpTeeOs:
    """The secure-world OS hosting TAs and PTAs.

    ``ta_verification_key`` opts into signed-TA loading: when set,
    :meth:`install_ta` requires a signature produced by
    :func:`repro.optee.signing.sign_ta` under the matching key and
    refuses anything else — the TEE's root of the application trust chain.
    """

    def __init__(
        self,
        machine: TrustZoneMachine,
        ta_verification_key: bytes | None = None,
    ):
        self.machine = machine
        self._ta_verification_key = ta_verification_key
        self.heap = SecureHeap(machine.secure_heap, machine=machine)
        self._ta_classes: dict[TaUuid, type[TrustedApplication]] = {}
        self._ta_instances: dict[TaUuid, TrustedApplication] = {}
        self._ptas: dict[TaUuid, PseudoTa] = {}
        self._sessions: dict[int, Session] = {}
        self._supplicant: "TeeSupplicant | None" = None
        self._storage: "SecureStorage | None" = None
        self.rpc_count = 0
        self._boot()

    # -- boot -----------------------------------------------------------------

    def _boot(self) -> None:
        """Install SMC handlers; runs at machine bring-up."""
        mon = self.machine.monitor
        mon.register(SmcFunction.CALL_WITH_ARG, self._handle_call)
        mon.register(SmcFunction.GET_SHM_CONFIG, self._handle_shm_config)
        self.machine.trace.emit(self.machine.clock.now, "optee.os", "boot")

    def _handle_shm_config(self) -> dict[str, int]:
        shm = self.machine.shmem
        return {"base": shm.base, "size": shm.size}

    # -- supplicant / storage wiring ---------------------------------------------

    def attach_supplicant(self, supplicant: "TeeSupplicant") -> None:
        """Connect the normal-world supplicant daemon."""
        self._supplicant = supplicant

    @property
    def supplicant(self) -> "TeeSupplicant":
        """The attached supplicant (raises if none)."""
        if self._supplicant is None:
            raise TeeCommunicationError("no TEE supplicant attached")
        return self._supplicant

    @property
    def storage(self) -> "SecureStorage":
        """Lazily constructed sealed storage (needs the supplicant's fs)."""
        if self._storage is None:
            from repro.optee.storage import SecureStorage

            self._storage = SecureStorage(self)
        return self._storage

    # -- TA management ---------------------------------------------------------------

    def install_ta(
        self,
        ta_class: type[TrustedApplication],
        signature: bytes | None = None,
    ) -> TaUuid:
        """Register a TA class so clients can open sessions to it.

        With signed loading enabled, an absent or invalid ``signature``
        raises :class:`~repro.errors.TeeSecurityError`.
        """
        if self._ta_verification_key is not None:
            from repro.errors import TeeSecurityError
            from repro.optee.signing import verify_ta

            if signature is None:
                raise TeeSecurityError(
                    f"TA {ta_class().NAME!r} has no signature and signed "
                    f"loading is enforced"
                )
            verify_ta(ta_class, signature, self._ta_verification_key)
        probe = ta_class()
        self._ta_classes[probe.uuid] = ta_class
        self.machine.trace.emit(
            self.machine.clock.now, "optee.os", "install_ta",
            ta=probe.name, uuid=str(probe.uuid),
        )
        return probe.uuid

    def ta_instance(self, uuid: TaUuid) -> TrustedApplication | None:
        """The live instance for ``uuid``, if any (introspection for tests)."""
        return self._ta_instances.get(uuid)

    def register_pta(self, pta: PseudoTa) -> TaUuid:
        """Register a pseudo TA (boot-time, OS privilege)."""
        pta.on_register(PtaContext(self, pta))
        self._ptas[pta.uuid] = pta
        self.machine.trace.emit(
            self.machine.clock.now, "optee.os", "register_pta",
            pta=pta.name, uuid=str(pta.uuid),
        )
        return pta.uuid

    # -- secure-side dispatch (CPU already in secure world) ----------------------------

    def _handle_call(self, request: dict[str, Any]) -> Any:
        """Entry point for ``OPTEE_SMC_CALL_WITH_ARG``."""
        self.machine.cpu.require_world(World.SECURE)
        op = request.get("op")
        if op == "open_session":
            return self._open_session(request["uuid"], request.get("params") or Params())
        if op == "invoke":
            return self._invoke(
                request["session"], request["cmd"], request.get("params") or Params()
            )
        if op == "close_session":
            return self._close_session(request["session"])
        raise TeeError(f"unknown TEE request op: {op!r}")

    def _instantiate(self, uuid: TaUuid) -> TrustedApplication:
        ta_class = self._ta_classes.get(uuid)
        if ta_class is None:
            raise TeeItemNotFound(f"no TA installed with UUID {uuid}")
        instance = self._ta_instances.get(uuid)
        if instance is not None:
            if instance.panicked:
                raise TeeTargetDead(f"TA {instance.name} has panicked")
            return instance
        instance = ta_class()
        instance.ctx = TaContext(self, instance)
        self._run_ta_hook(instance, lambda: instance.on_create(instance.ctx))
        self._ta_instances[uuid] = instance
        return instance

    def _open_session(self, uuid: TaUuid, params: Params) -> int:
        self.machine.cpu.execute(self.machine.costs.session_open_cycles)
        self.machine.obs.metrics.inc("optee.session_open")
        ta = self._instantiate(uuid)
        if not (ta.FLAGS & TaFlags.MULTI_SESSION):
            if any(
                s.ta is ta and s.is_open for s in self._sessions.values()
            ):
                raise TeeBusy(f"TA {ta.name} is single-session and busy")
        session = Session(ta=ta)
        self._sessions[session.id] = session
        self._run_ta_hook(ta, lambda: ta.on_open_session(session, params))
        self.machine.trace.emit(
            self.machine.clock.now, "optee.os", "open_session",
            ta=ta.name, session=session.id,
        )
        return session.id

    def _invoke(self, session_id: int, cmd: int, params: Params) -> Any:
        session = self._sessions.get(session_id)
        if session is None:
            raise TeeItemNotFound(f"no session {session_id}")
        if session.state.value == "dead" or session.ta.panicked:
            raise TeeTargetDead(f"TA {session.ta.name} has panicked")
        if not session.is_open:
            raise TeeItemNotFound(f"session {session_id} is closed")
        self.machine.cpu.execute(self.machine.costs.ta_invoke_cycles)
        self.machine.obs.metrics.inc("optee.ta_invoke")
        session.invoke_count += 1
        self.machine.trace.emit(
            self.machine.clock.now, "optee.ta.invoke", "cmd",
            ta=session.ta.name, session=session_id, cmd=cmd,
        )
        return self._run_ta_hook(
            session.ta, lambda: session.ta.on_invoke(session, cmd, params)
        )

    def _close_session(self, session_id: int) -> None:
        session = self._sessions.get(session_id)
        if session is None or not session.is_open:
            return  # closing a closed/unknown session is a no-op, as in OP-TEE
        self._run_ta_hook(session.ta, lambda: session.ta.on_close_session(session))
        session.close()
        ta = session.ta
        if not (ta.FLAGS & TaFlags.INSTANCE_KEEP_ALIVE):
            if not any(s.ta is ta and s.is_open for s in self._sessions.values()):
                self._destroy_instance(ta)

    def _destroy_instance(self, ta: TrustedApplication) -> None:
        self._run_ta_hook(ta, ta.on_destroy, during_teardown=True)
        if ta.ctx is not None:
            ta.ctx.release_all()
        self._ta_instances.pop(ta.uuid, None)

    def _run_ta_hook(self, ta, thunk, during_teardown: bool = False):
        """Run a TA hook with panic semantics."""
        faults = self.machine.secure_faults
        try:
            if (
                faults is not None
                and not during_teardown
                and faults.fires("ta_panic")
            ):
                from repro.errors import InjectedFault

                raise InjectedFault(f"injected panic in TA {ta.name}")
            return thunk()
        except TeeError:
            raise  # GP status codes are part of the API contract
        except Exception as exc:
            ta.panicked = True
            for s in self._sessions.values():
                if s.ta is ta:
                    s.kill()
            self.machine.obs.metrics.inc("tee.panics")
            self.machine.trace.emit(
                self.machine.clock.now, "optee.os", "ta_panic",
                ta=ta.name, error=repr(exc),
            )
            if during_teardown:
                return None  # teardown panics are contained
            raise TeeTargetDead(f"TA {ta.name} panicked: {exc!r}") from exc

    def reap_panicked(self, uuid: TaUuid) -> bool:
        """Tear down a panicked TA instance so it can be re-instantiated.

        A panicked TA never runs code again (``on_destroy`` included), so
        the OS itself must reclaim what it held: its secure-heap
        allocations are released via its context and its dead sessions are
        dropped from the session table.  Returns ``True`` if something was
        reaped.  This is the primitive :class:`~repro.optee.supervise.TaSupervisor`
        builds restart on — without the heap release, every restart would
        leak a model-sized allocation and the heap would exhaust.
        """
        ta = self._ta_instances.get(uuid)
        if ta is None or not ta.panicked:
            return False
        if ta.ctx is not None:
            ta.ctx.release_all()
        self._ta_instances.pop(uuid, None)
        for sid in [s.id for s in self._sessions.values() if s.ta is ta]:
            self._sessions.pop(sid, None)
        self.machine.obs.metrics.inc("tee.reaped")
        self.machine.trace.emit(
            self.machine.clock.now, "optee.os", "ta_reaped",
            ta=ta.name, uuid=str(uuid),
        )
        return True

    # -- PTA dispatch -------------------------------------------------------------------

    def invoke_pta(
        self,
        uuid: TaUuid,
        cmd: int,
        payload: Any,
        caller: TrustedApplication | None,
    ) -> Any:
        """Secure-world internal call into a PTA (no world switch)."""
        self.machine.cpu.require_world(World.SECURE)
        pta = self._ptas.get(uuid)
        if pta is None:
            raise TeeItemNotFound(f"no PTA with UUID {uuid}")
        self.machine.cpu.execute(self.machine.costs.pta_invoke_cycles)
        self.machine.obs.metrics.inc("optee.pta_invoke")
        faults = self.machine.secure_faults
        if faults is not None and faults.fires("pta"):
            from repro.errors import InjectedFault

            raise InjectedFault(f"injected PTA transfer error ({pta.name})")
        pta.invoke_count += 1
        self.machine.trace.emit(
            self.machine.clock.now, "optee.pta.invoke", "cmd",
            pta=pta.name, cmd=cmd,
            caller=caller.name if caller is not None else None,
        )
        return pta.on_invoke(cmd, payload, caller)

    # -- supplicant RPC -------------------------------------------------------------------

    def supplicant_rpc(self, service: str, method: str, *args: Any) -> Any:
        """Perform one RPC to the normal-world supplicant.

        Charges the RPC overhead secure-side, then rides the monitor's
        return-to-normal-world path so the two world switches are charged
        at the monitor exactly like any other transition.
        """
        supplicant = self.supplicant
        self.machine.cpu.execute(self.machine.costs.supplicant_rpc_cycles)
        self.rpc_count += 1
        self.machine.obs.metrics.inc("optee.rpc")
        self.machine.trace.emit(
            self.machine.clock.now, "optee.rpc", "call",
            service=service, method=method,
        )
        with self.machine.obs.span(f"{service}.{method}", category="rpc"):
            return self.machine.monitor.secure_call_to_normal(
                lambda: supplicant.handle(service, method, *args)
            )

    # -- reporting ------------------------------------------------------------------------

    def summary(self) -> dict:
        """OS counters for reports and tests."""
        return {
            "tas_installed": len(self._ta_classes),
            "tas_live": len(self._ta_instances),
            "ptas": len(self._ptas),
            "sessions": len(self._sessions),
            "rpc_count": self.rpc_count,
            "heap_used": self.heap.used_bytes,
            "heap_high_water": self.heap.high_water_bytes,
        }
