"""Trusted application framework.

A TA is the secure-world userland program of the design: in the paper it
hosts the ASR + sensitive-content classifier and the relay module.  TAs
follow the GlobalPlatform lifecycle and interact with the rest of the TEE
only through their :class:`TaContext` — the capability object the TEE OS
hands them, exposing the secure heap, PTA invocation, supplicant RPC and
secure storage.  A TA holds *no* OS-level privileges; anything touching
hardware goes through a PTA (paper Section II).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from repro.errors import TeeAccessDenied, TeeOutOfMemory
from repro.optee.params import MemRef, Params
from repro.optee.uuid import TaUuid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.span import _ActiveSpan
    from repro.optee.os import OpTeeOs
    from repro.optee.session import Session
    from repro.optee.storage import SecureStorage


class TaFlags(enum.Flag):
    """TA manifest flags (subset of OP-TEE's)."""

    NONE = 0
    SINGLE_INSTANCE = enum.auto()
    MULTI_SESSION = enum.auto()
    INSTANCE_KEEP_ALIVE = enum.auto()


class TaContext:
    """Capabilities the TEE OS grants a TA instance.

    Everything a TA does that has a cost or a privilege implication funnels
    through here, so the OS can charge cycles, enforce the heap budget and
    log trace events uniformly.
    """

    def __init__(self, os: "OpTeeOs", ta: "TrustedApplication"):
        self._os = os
        self._ta = ta
        self._allocations: list[int] = []

    # -- compute ---------------------------------------------------------------

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` of secure-world computation."""
        self._os.machine.cpu.execute(cycles)

    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._os.machine.clock.now

    # -- secure heap -------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes of secure heap; returns the address.

        Raises :class:`TeeOutOfMemory` when the TA heap budget is exhausted
        — the failure mode paper Section V warns about for large ML models.
        """
        addr = self._os.heap.alloc(size, owner=str(self._ta.uuid))
        self._allocations.append(addr)
        return addr

    def free(self, addr: int) -> None:
        """Release a secure-heap allocation."""
        self._os.heap.free(addr)
        if addr in self._allocations:
            self._allocations.remove(addr)

    def store_bytes(self, data: bytes) -> int:
        """Allocate secure heap and copy ``data`` into it; returns the address."""
        addr = self.alloc(len(data))
        self._os.machine.memory.write(addr, data, self._os.machine.cpu.world)
        return addr

    def _check_heap_ownership(self, addr: int, size: int) -> None:
        """Per-TA heap isolation.

        OP-TEE "secures trusted applications from the non-secure OS, as
        well as other TAs" (paper §II): a TA's heap accesses must stay
        inside its own live allocations.  On real hardware this is MMU
        separation per TA; here the heap's owner table is the ground
        truth and a violation is a TA-fatal security error.
        """
        owner = self._os.heap.owner_of(addr, size)
        if owner != str(self._ta.uuid):
            self._os.machine.trace.emit(
                self._os.machine.clock.now, "optee.isolation", "violation",
                ta=self._ta.name, addr=addr, owner=owner,
            )
            raise TeeAccessDenied(
                f"TA {self._ta.name!r} touched secure heap it does not own "
                f"(0x{addr:x}, owner={owner!r})"
            )

    def load_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes of this TA's own secure-heap memory."""
        self._check_heap_ownership(addr, size)
        return self._os.machine.memory.read(addr, size, self._os.machine.cpu.world)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write into this TA's own secure-heap memory."""
        self._check_heap_ownership(addr, len(data))
        self._os.machine.memory.write(addr, data, self._os.machine.cpu.world)

    def heap_free_bytes(self) -> int:
        """Remaining secure-heap budget (for model-fit checks)."""
        return self._os.heap.free_bytes

    def release_all(self) -> None:
        """Free every live allocation this context made (TA teardown)."""
        for addr in list(self._allocations):
            self.free(addr)

    # -- PTA access --------------------------------------------------------------

    def invoke_pta(self, uuid: TaUuid, cmd: int, payload: Any = None) -> Any:
        """Invoke a pseudo TA command (secure-world internal call)."""
        return self._os.invoke_pta(uuid, cmd, payload, caller=self._ta)

    # -- normal-world services ------------------------------------------------------

    def rpc(self, service: str, method: str, *args: Any) -> Any:
        """Call a TEE-supplicant service in the normal world.

        Costs two world switches plus the supplicant overhead; the payload
        transits non-secure memory, so callers must only send data that is
        allowed to leave the TEE (the relay sends ciphertext).
        """
        return self._os.supplicant_rpc(service, method, *args)

    # -- secure storage ----------------------------------------------------------

    @property
    def storage(self) -> "SecureStorage":
        """Sealed persistent storage for this TA."""
        return self._os.storage

    # -- shared memory (client-provided memrefs) ----------------------------------

    def read_memref(self, ref: MemRef) -> bytes:
        """Read a client memref's bytes (crosses into non-secure memory)."""
        addr = ref.shm.addr + ref.offset
        return self._os.machine.memory.read(addr, ref.size, self._os.machine.cpu.world)

    def write_memref(self, ref: MemRef, data: bytes) -> None:
        """Write into a client memref (output parameter)."""
        if len(data) > ref.size:
            raise TeeOutOfMemory(
                f"memref too small: {ref.size} bytes for {len(data)} output"
            )
        addr = ref.shm.addr + ref.offset
        self._os.machine.memory.write(addr, data, self._os.machine.cpu.world)

    # -- tracing / observability -----------------------------------------------------

    def log(self, name: str, **data: Any) -> None:
        """Emit a TA-scoped trace event."""
        self._os.machine.trace.emit(
            self._os.machine.clock.now, f"optee.ta.{self._ta.name}", name, **data
        )

    def span(
        self, name: str, category: str | None = None, **attrs: Any
    ) -> "_ActiveSpan":
        """Open a measurement span on the machine's tracer.

        Spans observe (cycles, domains, world switches, energy) without
        charging anything, so TA code can bracket its stages freely.
        Defaults to a TA-scoped category.
        """
        return self._os.machine.obs.span(
            name, category=category or f"ta.{self._ta.name}", **attrs
        )

    @property
    def metrics(self) -> "MetricsRegistry":
        """The machine-wide metrics registry."""
        return self._os.machine.obs.metrics


class TrustedApplication:
    """Base class for TAs.  Subclasses override the lifecycle hooks.

    Class attributes
    ----------------
    NAME:
        Human-readable identifier; the UUID is derived from it unless
        ``UUID`` is set explicitly.
    FLAGS:
        Manifest flags controlling instancing/session policy.
    """

    NAME = "ta.base"
    UUID: TaUuid | None = None
    FLAGS: TaFlags = TaFlags.SINGLE_INSTANCE | TaFlags.MULTI_SESSION

    def __init__(self) -> None:
        self.name = self.NAME
        self.uuid = self.UUID or TaUuid.from_name(self.NAME)
        self.ctx: TaContext | None = None
        self.panicked = False

    # -- lifecycle hooks -------------------------------------------------------

    def on_create(self, ctx: TaContext) -> None:
        """Instance created (once per instance).  Allocate long-lived state here."""

    def on_open_session(self, session: "Session", params: Params) -> None:
        """A client opened a session."""

    def on_invoke(self, session: "Session", cmd: int, params: Params) -> Any:
        """A client invoked command ``cmd``.  Must be overridden."""
        raise NotImplementedError(f"{self.name} does not handle command {cmd}")

    def on_close_session(self, session: "Session") -> None:
        """A client closed its session."""

    def on_destroy(self) -> None:
        """Instance is being destroyed.  Release resources here."""
