"""GlobalPlatform-style TEE client API (normal world).

This is the library a normal-world application links against to talk to the
TEE — the analogue of ``libteec``.  Every call crosses the secure monitor
via SMC, so using this API from the simulator charges the same world-switch
costs a real client pays.

Shared memory follows the GP model: the client allocates a buffer from the
non-secure shared-memory carveout (discovered via ``GET_SHM_CONFIG``),
writes its input there, and passes :class:`~repro.optee.params.MemRef`
parameters pointing into it.  Because the carveout is non-secure, anything
placed there is visible to the untrusted OS — which is exactly why the
paper's design keeps raw peripheral data out of it and only ever exposes
filtered output.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TeeBadParameters
from repro.optee.params import Params
from repro.optee.uuid import TaUuid
from repro.tz.machine import TrustZoneMachine
from repro.tz.monitor import SmcFunction
from repro.tz.worlds import World


class SharedMemory:
    """A client-owned buffer in the non-secure shared carveout."""

    def __init__(self, machine: TrustZoneMachine, addr: int, size: int):
        self._machine = machine
        self.addr = addr
        self.size = size
        self.released = False

    def write(self, data: bytes, offset: int = 0) -> None:
        """Write from the normal world (client side)."""
        self._check_span(offset, len(data))
        self._machine.memory.write(self.addr + offset, data, World.NORMAL)

    def read(self, size: int | None = None, offset: int = 0) -> bytes:
        """Read from the normal world (client side)."""
        if size is None:
            size = self.size - offset
        self._check_span(offset, size)
        return self._machine.memory.read(self.addr + offset, size, World.NORMAL)

    def _check_span(self, offset: int, size: int) -> None:
        if self.released:
            raise TeeBadParameters("use of released shared memory")
        if offset < 0 or offset + size > self.size:
            raise TeeBadParameters(
                f"span [{offset}, {offset + size}) outside {self.size}-byte buffer"
            )


class ClientSession:
    """An open session handle held by a normal-world client."""

    def __init__(self, client: "TeeClient", session_id: int, uuid: TaUuid):
        self._client = client
        self.session_id = session_id
        self.uuid = uuid
        self.closed = False

    def invoke(self, cmd: int, params: Params | None = None) -> Any:
        """Invoke a TA command; one full SMC round trip."""
        if self.closed:
            raise TeeBadParameters("invoke on closed session")
        return self._client._smc_call(
            {"op": "invoke", "session": self.session_id, "cmd": cmd,
             "params": params or Params()}
        )

    def close(self) -> None:
        """Close the session (idempotent)."""
        if self.closed:
            return
        self._client._smc_call({"op": "close_session", "session": self.session_id})
        self.closed = True

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TeeClient:
    """Normal-world TEE context (``TEEC_InitializeContext`` analogue)."""

    def __init__(self, machine: TrustZoneMachine):
        self._machine = machine
        self._shm_config = machine.monitor.smc(SmcFunction.GET_SHM_CONFIG)
        self._shared: list[SharedMemory] = []

    def allocate_shared_memory(self, size: int) -> SharedMemory:
        """Allocate a buffer in the non-secure shared carveout."""
        self._machine.cpu.require_world(World.NORMAL)
        self._machine.cpu.execute(self._machine.costs.shared_mem_register_cycles)
        addr = self._machine.shmem_allocator.alloc(size)
        shm = SharedMemory(self._machine, addr, size)
        self._shared.append(shm)
        return shm

    def release_shared_memory(self, shm: SharedMemory) -> None:
        """Free a shared buffer."""
        if shm.released:
            return
        self._machine.shmem_allocator.free(shm.addr)
        shm.released = True
        if shm in self._shared:
            self._shared.remove(shm)

    def open_session(self, uuid: TaUuid, params: Params | None = None) -> ClientSession:
        """Open a session to a TA (``TEEC_OpenSession`` analogue)."""
        session_id = self._smc_call(
            {"op": "open_session", "uuid": uuid, "params": params or Params()}
        )
        return ClientSession(self, session_id, uuid)

    def _smc_call(self, request: dict[str, Any]) -> Any:
        self._machine.cpu.require_world(World.NORMAL)
        self._machine.cpu.execute(self._machine.costs.syscall_cycles)
        return self._machine.monitor.smc(SmcFunction.CALL_WITH_ARG, request)

    def close(self) -> None:
        """Release all shared memory this context still owns."""
        for shm in list(self._shared):
            self.release_shared_memory(shm)
