"""OP-TEE behavioural model.

Substitutes for the OP-TEE OS on the Jetson (see DESIGN.md).  The model
reproduces the architecture Fig. 1 of the paper builds on:

* **Trusted applications (TAs)** — userland-privilege secure programs with
  the GlobalPlatform lifecycle (create / open session / invoke / close /
  destroy), hosted by :class:`~repro.optee.os.OpTeeOs`.
* **Pseudo TAs (PTAs)** — secure modules *with OS-level privileges* that
  bridge TAs to low-level code such as device drivers (paper Section II).
* **GP Client API** — the normal world reaches the TEE through
  :class:`~repro.optee.client.TeeClient`, whose every call crosses the
  secure monitor via SMC.
* **TEE supplicant** — the normal-world daemon that performs filesystem
  and network services on behalf of the TEE (Fig. 1 steps 6–7).
* **Secure storage** — REE-FS style: objects are sealed (encrypted + MACed)
  before the supplicant writes them to untrusted storage.
"""

from repro.optee.client import ClientSession, SharedMemory, TeeClient
from repro.optee.os import OpTeeOs
from repro.optee.params import MemRef, Param, Params, Value
from repro.optee.pta import PseudoTa, PtaContext
from repro.optee.session import Session
from repro.optee.signing import sign_ta, verify_ta
from repro.optee.storage import SecureStorage
from repro.optee.supplicant import TeeSupplicant
from repro.optee.ta import TaContext, TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid

__all__ = [
    "ClientSession",
    "MemRef",
    "OpTeeOs",
    "Param",
    "Params",
    "PseudoTa",
    "PtaContext",
    "SecureStorage",
    "Session",
    "SharedMemory",
    "TaContext",
    "TaFlags",
    "TaUuid",
    "TeeClient",
    "TeeSupplicant",
    "TrustedApplication",
    "Value",
    "sign_ta",
    "verify_ta",
]
