"""TA sessions.

A session is the unit of client↔TA conversation: commands are invoked on a
session, and a TA panic kills every session of its instance (GlobalPlatform
``TEE_ERROR_TARGET_DEAD`` semantics, which the tests exercise).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.ta import TrustedApplication

_session_ids = itertools.count(1)


class SessionState(enum.Enum):
    """Lifecycle state of a session."""

    OPEN = "open"
    CLOSED = "closed"
    DEAD = "dead"  # TA panicked


@dataclass
class Session:
    """One open client session with a TA instance."""

    ta: "TrustedApplication"
    id: int = field(default_factory=lambda: next(_session_ids))
    state: SessionState = SessionState.OPEN
    user_data: dict[str, Any] = field(default_factory=dict)
    invoke_count: int = 0

    @property
    def is_open(self) -> bool:
        """True while commands may be invoked."""
        return self.state is SessionState.OPEN

    def close(self) -> None:
        """Mark closed (idempotent; dead sessions stay dead)."""
        if self.state is SessionState.OPEN:
            self.state = SessionState.CLOSED

    def kill(self) -> None:
        """Mark dead after a TA panic."""
        self.state = SessionState.DEAD
