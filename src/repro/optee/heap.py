"""The TA secure heap.

Wraps the machine's secure-heap allocator with OP-TEE semantics: failures
surface as :class:`TeeOutOfMemory`, allocations are attributed to an owner
TA, and a high-water mark is kept so experiments T3/T5 can report peak
secure-memory footprint against the budget the paper's Section V worries
about.
"""

from __future__ import annotations

from repro.errors import TeeOutOfMemory
from repro.tz.memory import MemoryAllocator


class SecureHeap:
    """Owner-attributed secure heap with usage statistics."""

    def __init__(self, allocator: MemoryAllocator, machine=None):
        self._alloc = allocator
        # Optional machine back-reference: lets the allocator probe the
        # secure-world chaos injector.  Heaps built without one (unit
        # tests) simply never inject.
        self._machine = machine
        self._owners: dict[int, str] = {}
        self.high_water_bytes = 0
        self.failed_allocs = 0

    @property
    def total_bytes(self) -> int:
        """Configured secure-heap capacity."""
        return self._alloc.total_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._alloc.used_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return self._alloc.free_bytes

    def alloc(self, size: int, owner: str = "?") -> int:
        """Allocate ``size`` bytes for ``owner``; returns the address.

        An injected ``heap`` fault fails the allocation *without*
        consuming memory — transient pressure, not a leak — so the caller
        sees the same ``TeeOutOfMemory`` a genuinely full heap raises.
        """
        faults = getattr(self._machine, "secure_faults", None)
        if faults is not None and faults.fires("heap"):
            self.failed_allocs += 1
            raise TeeOutOfMemory(
                f"injected secure-heap exhaustion ({size} bytes for {owner})"
            )
        try:
            addr = self._alloc.alloc(size)
        except MemoryError as exc:
            self.failed_allocs += 1
            raise TeeOutOfMemory(str(exc)) from exc
        self._owners[addr] = owner
        self.high_water_bytes = max(self.high_water_bytes, self.used_bytes)
        return addr

    def free(self, addr: int) -> None:
        """Release an allocation."""
        self._alloc.free(addr)
        self._owners.pop(addr, None)

    def usage_by_owner(self) -> dict[str, int]:
        """Live allocation totals grouped by owner TA."""
        out: dict[str, int] = {}
        for addr, owner in self._owners.items():
            # Size lookup goes through the allocator's private table; the
            # heap is the allocator's only client so this stays coherent.
            alloc = self._alloc._allocs[addr]
            out[owner] = out.get(owner, 0) + alloc.size
        return out

    def owner_of(self, addr: int, size: int = 1) -> str | None:
        """Owner of the live allocation containing ``[addr, addr+size)``.

        Returns ``None`` if the span is not inside any live allocation —
        which per-TA isolation treats as equally out of bounds.
        """
        for base, alloc in self._alloc._allocs.items():
            if base <= addr and addr + size <= base + alloc.size:
                return self._owners.get(base)
        return None

    def would_fit(self, size: int) -> bool:
        """Conservative check whether ``size`` bytes could be allocated now."""
        return size <= self.free_bytes
