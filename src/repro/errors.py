"""Exception hierarchy for the repro package.

Every subsystem raises exceptions rooted at :class:`ReproError` so callers
can catch domain failures without swallowing programming errors.  The
hierarchy deliberately mirrors the system decomposition: TrustZone faults,
OP-TEE (GlobalPlatform-style) results, kernel faults, driver faults, ML
errors, and protocol errors each get their own subtree.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# TrustZone machine faults
# ---------------------------------------------------------------------------


class TrustZoneError(ReproError):
    """Base class for TrustZone machine faults."""


class SecureAccessViolation(TrustZoneError):
    """A non-secure access targeted a secure-world memory partition.

    On real hardware this is an external abort raised by the TZASC; in the
    simulator it is the primary security signal used by tests and attack
    models to establish that isolation holds.
    """


class InvalidAddressError(TrustZoneError):
    """An access referenced an address outside every mapped region."""


class SmcError(TrustZoneError):
    """A secure monitor call was malformed or used an unknown function id."""


class WorldStateError(TrustZoneError):
    """An operation was attempted from the wrong world or CPU state."""


# ---------------------------------------------------------------------------
# OP-TEE faults
# ---------------------------------------------------------------------------


class TeeError(ReproError):
    """Base class for OP-TEE errors.

    Mirrors the GlobalPlatform ``TEEC_ERROR_*`` constants: each subclass
    carries the numeric ``code`` of the closest GP result code so client
    code can branch on it the way a real OP-TEE client would.
    """

    code = 0xFFFF0000  # TEEC_ERROR_GENERIC

    def __init__(self, message: str = ""):
        super().__init__(message or self.__class__.__name__)


class TeeItemNotFound(TeeError):
    """Requested TA, PTA, session or storage object does not exist."""

    code = 0xFFFF0008  # TEEC_ERROR_ITEM_NOT_FOUND


class TeeAccessDenied(TeeError):
    """Caller lacks the privilege for the requested operation."""

    code = 0xFFFF0001  # TEEC_ERROR_ACCESS_DENIED


class TeeOutOfMemory(TeeError):
    """The secure heap cannot satisfy an allocation request."""

    code = 0xFFFF000C  # TEEC_ERROR_OUT_OF_MEMORY


class TeeBadParameters(TeeError):
    """Parameters passed to a TA/PTA command were malformed."""

    code = 0xFFFF0006  # TEEC_ERROR_BAD_PARAMETERS


class TeeBusy(TeeError):
    """The TEE cannot service the request right now (e.g. single-session TA)."""

    code = 0xFFFF000D  # TEEC_ERROR_BUSY


class TeeCommunicationError(TeeError):
    """RPC between secure world and the supplicant failed."""

    code = 0xFFFF000E  # TEEC_ERROR_COMMUNICATION


class TeeSecurityError(TeeError):
    """A security policy was violated inside the TEE."""

    code = 0xFFFF000F  # TEEC_ERROR_SECURITY


class TeeTargetDead(TeeError):
    """The TA panicked and its sessions are no longer usable."""

    code = 0xFFFF3024  # TEE_ERROR_TARGET_DEAD


# ---------------------------------------------------------------------------
# Kernel / driver faults
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for untrusted-kernel faults."""


class DriverError(KernelError):
    """A device driver operation failed."""


class DeviceNotFound(KernelError):
    """No device/driver is registered under the requested name."""


class DeviceBusy(DriverError):
    """The device is already claimed by another stream."""


class DeviceStateError(DriverError):
    """Operation invalid in the device's current state (e.g. read before start)."""


class SyscallError(KernelError):
    """A simulated syscall failed; carries an errno-style symbolic name."""

    def __init__(self, errno_name: str, message: str = ""):
        self.errno_name = errno_name
        super().__init__(f"{errno_name}: {message}" if message else errno_name)


# ---------------------------------------------------------------------------
# Peripheral / bus faults
# ---------------------------------------------------------------------------


class PeripheralError(ReproError):
    """Base class for peripheral/bus faults."""


class BusProtocolError(PeripheralError):
    """An I²S (or other bus) framing/protocol rule was violated."""


class FifoOverrunError(PeripheralError):
    """Producer outran the consumer and the hardware FIFO overflowed."""


class FifoUnderrunError(PeripheralError):
    """Consumer outran the producer and the hardware FIFO drained."""


# ---------------------------------------------------------------------------
# ML faults
# ---------------------------------------------------------------------------


class MlError(ReproError):
    """Base class for machine-learning subsystem errors."""


class ShapeError(MlError):
    """Tensor shapes are inconsistent for the requested operation."""


class VocabularyError(MlError):
    """A token is not representable in the tokenizer's vocabulary."""


class NotFittedError(MlError):
    """A model/preprocessor was used before being trained/fitted."""


# ---------------------------------------------------------------------------
# Crypto / protocol faults
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for (simulation-grade) crypto failures."""


class AuthenticationFailure(CryptoError):
    """AEAD tag or handshake MAC verification failed."""


class HandshakeError(CryptoError):
    """The TLS-like handshake could not be completed."""


class RecordError(CryptoError):
    """A TLS-like record was malformed, replayed or out of sequence."""


# ---------------------------------------------------------------------------
# Pipeline faults
# ---------------------------------------------------------------------------


class PipelineError(ReproError):
    """Base class for end-to-end pipeline orchestration failures."""


class PolicyError(PipelineError):
    """A filtering policy was misconfigured."""


# ---------------------------------------------------------------------------
# Injected (chaos) faults
# ---------------------------------------------------------------------------


class InjectedFault(ReproError):
    """A fault deliberately raised by the secure-world fault injector.

    Deliberately *not* a :class:`TeeError`: GP status codes pass through a
    TA hook unchanged, whereas an injected fault must look like the
    arbitrary crash it models — so it trips OP-TEE's panic path
    (``TeeTargetDead``) exactly as a wild pointer or assert would.
    """


# ---------------------------------------------------------------------------
# Relay faults
# ---------------------------------------------------------------------------


class RelayError(ReproError):
    """Base class for secure-relay failures."""


class RelayDeliveryError(RelayError):
    """Every delivery attempt (including retries) failed.

    Raised secure-side only: the TA catches it and spills the payload into
    the sealed store-and-forward queue, so the error never crosses the TEE
    boundary during normal operation.
    """

    def __init__(self, message: str = "", attempts: int = 0):
        self.attempts = attempts
        super().__init__(message or f"delivery failed after {attempts} attempts")


class RelayExhaustedError(RelayDeliveryError):
    """The retry policy's whole budget was spent on transient faults.

    The typed form of retry exhaustion: carries how many attempts were
    made and how many cycles the backoff spans burned, so callers (and
    alerts) can distinguish "the network flapped once" from "we retried
    for the full budget and still lost".  Subclasses
    :class:`RelayDeliveryError` so every existing spill-to-queue catch
    site keeps working unchanged.
    """

    def __init__(
        self, message: str = "", attempts: int = 0, backoff_cycles: int = 0
    ):
        self.backoff_cycles = backoff_cycles
        super().__init__(
            message
            or (
                f"delivery exhausted after {attempts} attempts"
                f" ({backoff_cycles} backoff cycles)"
            ),
            attempts=attempts,
        )


class RelayThrottledError(RelayDeliveryError):
    """The cloud admitted the connection but refused the event: backpressure.

    Not a transient fault — the server answered, deliberately, with a
    ``Throttled`` verdict and a deterministic ``retry_after_cycles`` hint.
    Server-directed backoff overrides the client's
    :class:`~repro.relay.relay.RetryPolicy`: the relay must not burn its
    retry budget hammering an overloaded ingestion tier.  ``deferred``
    marks the local short-circuit case — the backpressure window from an
    earlier verdict is still open, so no wire traffic was attempted at
    all.  Subclasses :class:`RelayDeliveryError` so the payload still
    lands in the sealed store-and-forward queue at existing catch sites.
    """

    def __init__(
        self,
        message: str = "",
        retry_after_cycles: int = 0,
        attempts: int = 0,
        deferred: bool = False,
    ):
        self.retry_after_cycles = retry_after_cycles
        self.deferred = deferred
        super().__init__(
            message
            or (
                "cloud backpressure window open"
                if deferred
                else f"cloud throttled; retry after {retry_after_cycles} cycles"
            ),
            attempts=attempts,
        )


class RelayQueueFullError(RelayError):
    """The sealed store-and-forward queue is at its bounded depth.

    The queue fails *closed*: the new enqueue is refused (the newest
    payload is shed, with accounting) rather than growing without limit
    through a long outage or silently evicting older committed payloads.
    """

    def __init__(self, message: str = "", depth: int = 0):
        self.depth = depth
        super().__init__(message or f"store-and-forward queue full at {depth}")
