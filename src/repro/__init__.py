"""repro: reproduction of *Enhancing IoT Security and Privacy with Trusted
Execution Environments and Machine Learning* (Yuhala, DSN 2023).

A simulated ARM TrustZone / OP-TEE platform on which the paper's design —
peripheral drivers ported into the TEE, with in-enclave ML filtering of
sensitive data before it reaches an untrusted cloud — runs end to end,
alongside the conventional insecure baseline it is evaluated against.

Quick start::

    from repro import build_demo_pipeline

    secure, workload, platform = build_demo_pipeline(seed=7, utterances=20)
    run = secure.process(workload)
    print(run.summary())

See ``examples/quickstart.py`` for the narrated version, DESIGN.md for the
system inventory, and EXPERIMENTS.md for the evaluation.
"""

from repro.core import (
    BaselinePipeline,
    FilterBundle,
    FilterPolicy,
    IotPlatform,
    SecurePipeline,
    SensitiveFilter,
    UtteranceWorkload,
)
from repro.provision import build_demo_pipeline, provision_bundle

__version__ = "1.0.0"

__all__ = [
    "BaselinePipeline",
    "FilterBundle",
    "FilterPolicy",
    "IotPlatform",
    "SecurePipeline",
    "SensitiveFilter",
    "UtteranceWorkload",
    "build_demo_pipeline",
    "provision_bundle",
    "__version__",
]
