"""Human-readable TCB minimization reports.

Turns a :class:`~repro.tcb.analyze.MinimizationPlan` into the markdown
artifact an engineer would attach to a port review: headline reduction,
per-subsystem table, and the exact keep/strip lists (the input to the
conditional-compilation configuration).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tcb.analyze import MinimizationPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.deadtcb import DeadTcbReport


def render_markdown(plan: MinimizationPlan) -> str:
    """Render one plan as a markdown document."""
    r = plan.report
    lines = [
        f"# TCB minimization report — `{plan.driver}` / task `{plan.task}`",
        "",
        f"* functions: **{r.functions_kept} / {r.functions_total}** kept "
        f"({r.function_reduction_pct:.1f}% removed)",
        f"* LoC: **{r.loc_kept} / {r.loc_total}** kept "
        f"({r.loc_reduction_pct:.1f}% removed)",
        "",
        "## Per-subsystem",
        "",
        "| subsystem | LoC total | LoC kept | reduction |",
        "|---|---:|---:|---:|",
    ]
    for row in r.rows():
        lines.append(
            f"| {row['subsystem']} | {row['loc_total']} | "
            f"{row['loc_kept']} | {row['reduction_pct']:.1f}% |"
        )
    lines += [
        "",
        "## Functions kept",
        "",
    ]
    lines += [f"* `{fn}`" for fn in sorted(plan.keep)]
    lines += [
        "",
        "## Functions compiled out",
        "",
    ]
    lines += [f"* `{fn}`" for fn in sorted(plan.compiled_out)]
    lines.append("")
    return "\n".join(lines)


def render_dead_tcb(report: "DeadTcbReport") -> str:
    """Render the static/dynamic dead-TCB cross-check as markdown.

    The static analyzer's complement to the trace-driven plans: driver
    functions reachable from the TA's entry points that no traced task
    profile ever executed are attack surface the per-task builds cannot
    justify keeping.
    """
    lines = [
        f"# Dead-TCB cross-check — `{report.driver}`",
        "",
        f"* TA entry points used as roots: "
        f"{', '.join(f'`{e}`' for e in report.entry_points) or 'none'}",
        f"* statically reachable driver functions: "
        f"**{len(report.static_reachable)}** ({report.static_loc} LoC)",
        f"* dynamically exercised (all task profiles): "
        f"**{len(report.dynamic_hit)}**",
        f"* dead TCB (reachable, never traced): **{len(report.dead)}** "
        f"({report.dead_loc} LoC)",
        "",
        "## Dead functions",
        "",
    ]
    lines += [f"* `{fn}` ({report.loc.get(fn, 0)} LoC)" for fn in report.dead]
    if not report.dead:
        lines.append("*(none — every reachable function is exercised)*")
    if report.untracked_dynamic:
        lines += [
            "",
            "## Traced but not statically reachable (static blind spots)",
            "",
        ]
        lines += [f"* `{fn}`" for fn in report.untracked_dynamic]
    lines.append("")
    return "\n".join(lines)


def render_dead_tcb_delta(report: "DeadTcbReport", baseline: dict) -> str:
    """Render a dead-TCB report against its committed baseline entry.

    ``baseline`` is one driver's entry from ``analysis/deadtcb_baseline.json``
    (keys ``dead`` and ``dead_loc``).  New-dead functions are regressions
    the T001 gate fails CI on; fixed entries mean the baseline should be
    regenerated so the ratchet tightens.
    """
    base_dead = set(baseline.get("dead", ()))
    base_loc = int(baseline.get("dead_loc", 0))
    new_dead = [fn for fn in report.dead if fn not in base_dead]
    fixed = sorted(base_dead - set(report.dead))
    delta = report.dead_loc - base_loc
    lines = [
        f"# Dead-TCB delta — `{report.driver}`",
        "",
        f"* dead LoC: **{report.dead_loc}** now vs **{base_loc}** at "
        f"baseline ({'+' if delta >= 0 else ''}{delta})",
        f"* new dead functions (regressions): **{len(new_dead)}**",
        f"* no longer dead (regenerate baseline): **{len(fixed)}**",
        "",
    ]
    for fn in new_dead:
        lines.append(f"* REGRESSION `{fn}` ({report.loc.get(fn, 0)} LoC)")
    for fn in fixed:
        lines.append(f"* fixed `{fn}`")
    if not new_dead and not fixed:
        lines.append("*(no drift — baseline is current)*")
    lines.append("")
    return "\n".join(lines)


def render_compile_config(plan: MinimizationPlan) -> str:
    """Render the conditional-compilation configuration.

    The analogue of the paper's compiler-directive list: one
    ``CONFIG_<DRIVER>_<FN>=n`` line per excluded function, consumable by a
    Kconfig-style build.
    """
    prefix = plan.driver.upper().replace("-", "_")
    lines = [f"# auto-generated for task {plan.task!r}"]
    for fn in sorted(plan.compiled_out):
        symbol = fn.strip("_").upper()
        lines.append(f"CONFIG_{prefix}_{symbol}=n")
    for fn in sorted(plan.keep):
        symbol = fn.strip("_").upper()
        lines.append(f"CONFIG_{prefix}_{symbol}=y")
    lines.append("")
    return "\n".join(lines)
