"""TCB minimization toolkit.

Implements the paper's research plan item 2 end to end: trace a task with
the kernel tracer, analyze the logs "to identify a minimal set of executed
functions necessary for the task to complete", and apply conditional
compilation "to selectively exclude driver functions which are not
required for the task from being compiled and included in the final
OP-TEE image".

Pipeline: :class:`~repro.kernel.tracer.TraceSession` →
:class:`~repro.tcb.analyze.TcbAnalyzer` →
:class:`~repro.tcb.minimize.MinimizedBuild` →
:class:`~repro.tcb.metrics.TcbReport`.
"""

from repro.tcb.analyze import MinimizationPlan, TcbAnalyzer
from repro.tcb.callgraph import CallGraph
from repro.tcb.metrics import TcbReport
from repro.tcb.minimize import MinimizedBuild

__all__ = ["CallGraph", "MinimizationPlan", "MinimizedBuild", "TcbAnalyzer", "TcbReport"]
