"""Trace analysis: from call logs to a minimization plan.

"The logs are then analyzed to identify a minimal set of executed
functions necessary for the task to complete" (paper, research plan 2).

The analyzer unions the functions observed across the given trace
sessions, closes over observed call edges from the roots (defensive: a
record could be lost to ring-buffer overruns on real ftrace; closure keeps
chains intact), and optionally adds a caller-specified keep-list for
functions that run rarely but must survive (e.g. the overrun IRQ handler,
which a clean trace never exercises).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.drivers.base import Driver
from repro.kernel.tracer import TraceSession
from repro.tcb.callgraph import CallGraph
from repro.tcb.metrics import TcbReport


@dataclass(frozen=True)
class MinimizationPlan:
    """Which functions to keep / compile out for one task profile."""

    driver: str
    task: str
    keep: frozenset[str]
    compiled_out: frozenset[str]
    report: TcbReport = field(compare=False, default=None)  # type: ignore[assignment]


class TcbAnalyzer:
    """Computes minimization plans from trace sessions."""

    def __init__(self, driver_class: type[Driver]):
        self.driver_class = driver_class
        self.static_graph = CallGraph.static_of(driver_class)

    def analyze(
        self,
        sessions: list[TraceSession],
        task: str,
        always_keep: frozenset[str] = frozenset(),
    ) -> MinimizationPlan:
        """Produce a plan keeping exactly what the traced task needs.

        ``always_keep`` names functions to retain regardless of the trace
        (rare paths like error/IRQ handlers); unknown names raise so a
        typo cannot silently keep nothing.
        """
        declared = set(self.static_graph.nodes)
        unknown = always_keep - declared
        if unknown:
            raise ValueError(
                f"always_keep names unknown functions: {sorted(unknown)}"
            )

        dynamic = CallGraph.dynamic_of(self.driver_class, sessions)
        observed = set(dynamic.nodes)
        closed = dynamic.reachable_from(dynamic.roots()) | observed
        keep = frozenset(closed | always_keep)
        compiled_out = frozenset(declared - keep)
        report = TcbReport.compute(self.driver_class, keep)
        return MinimizationPlan(
            driver=self.driver_class.NAME,
            task=task,
            keep=keep,
            compiled_out=compiled_out,
            report=report,
        )

    def analyze_union(
        self,
        plans: list[MinimizationPlan],
        task: str = "union",
    ) -> MinimizationPlan:
        """Merge plans for several tasks into one build supporting all."""
        keep = frozenset().union(*(p.keep for p in plans)) if plans else frozenset()
        declared = frozenset(self.static_graph.nodes)
        report = TcbReport.compute(self.driver_class, keep)
        return MinimizationPlan(
            driver=self.driver_class.NAME,
            task=task,
            keep=keep,
            compiled_out=declared - keep,
            report=report,
        )
