"""TCB size metrics.

The quantity the paper cares about: how much driver code ends up inside
the OP-TEE image.  Reported in both functions and LoC, with per-subsystem
breakdowns, since 'porting effort' and 'attack surface' both track source
volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drivers.base import Driver


@dataclass(frozen=True)
class TcbReport:
    """Full-vs-minimized sizing for one driver build."""

    driver: str
    functions_total: int
    functions_kept: int
    loc_total: int
    loc_kept: int
    kept_by_subsystem: dict[str, int]
    total_by_subsystem: dict[str, int]

    @classmethod
    def compute(cls, driver_class: type[Driver], keep: frozenset[str]) -> "TcbReport":
        """Size a keep-set against the driver's full declaration."""
        functions = driver_class.functions()
        kept_by_subsystem: dict[str, int] = {}
        total_by_subsystem: dict[str, int] = {}
        loc_kept = 0
        for info in functions.values():
            total_by_subsystem[info.subsystem] = (
                total_by_subsystem.get(info.subsystem, 0) + info.loc
            )
            if info.name in keep:
                loc_kept += info.loc
                kept_by_subsystem[info.subsystem] = (
                    kept_by_subsystem.get(info.subsystem, 0) + info.loc
                )
        return cls(
            driver=driver_class.NAME,
            functions_total=len(functions),
            functions_kept=len(keep & set(functions)),
            loc_total=sum(i.loc for i in functions.values()),
            loc_kept=loc_kept,
            kept_by_subsystem=kept_by_subsystem,
            total_by_subsystem=total_by_subsystem,
        )

    @property
    def function_reduction_pct(self) -> float:
        """Share of functions eliminated, in percent."""
        if self.functions_total == 0:
            return 0.0
        return 100.0 * (1 - self.functions_kept / self.functions_total)

    @property
    def loc_reduction_pct(self) -> float:
        """Share of LoC eliminated, in percent."""
        if self.loc_total == 0:
            return 0.0
        return 100.0 * (1 - self.loc_kept / self.loc_total)

    def rows(self) -> list[dict]:
        """Per-subsystem rows for tabular reports."""
        out = []
        for subsystem in sorted(self.total_by_subsystem):
            total = self.total_by_subsystem[subsystem]
            kept = self.kept_by_subsystem.get(subsystem, 0)
            out.append(
                {
                    "subsystem": subsystem,
                    "loc_total": total,
                    "loc_kept": kept,
                    "reduction_pct": 100.0 * (1 - kept / total) if total else 0.0,
                }
            )
        return out
