"""Driver call graphs.

Two graphs matter for minimization:

* the **static** graph — every function the driver declares (nodes only;
  Python introspection cannot see call edges without execution), and
* the **dynamic** graph — the (caller → callee) edges actually observed by
  the tracer while a task ran.

The analyzer works from the dynamic graph, with reachability closure so a
function observed only as a callee keeps its whole observed call chain.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.drivers.base import Driver, DriverFunctionInfo
from repro.kernel.tracer import TraceSession


@dataclass
class CallGraph:
    """A set of functions and observed call edges among them."""

    nodes: dict[str, DriverFunctionInfo] = field(default_factory=dict)
    edges: set[tuple[str | None, str]] = field(default_factory=set)

    @classmethod
    def static_of(cls, driver_class: type[Driver]) -> "CallGraph":
        """The static graph: all declared functions, no edges."""
        return cls(nodes=dict(driver_class.functions()))

    @classmethod
    def dynamic_of(
        cls,
        driver_class: type[Driver],
        sessions: list[TraceSession],
        driver_name: str | None = None,
    ) -> "CallGraph":
        """The dynamic graph observed across one or more trace sessions."""
        name = driver_name or driver_class.NAME
        declared = driver_class.functions()
        graph = cls()
        for session in sessions:
            for record in session.records:
                if record.driver != name:
                    continue
                info = declared.get(record.fn)
                if info is None:
                    continue  # record from another driver build/version
                graph.nodes[record.fn] = info
                graph.edges.add((record.caller, record.fn))
        return graph

    # -- queries ---------------------------------------------------------------

    def roots(self) -> set[str]:
        """Functions observed being called from outside the driver."""
        return {callee for caller, callee in self.edges if caller is None}

    def callees_of(self, fn: str) -> set[str]:
        """Direct callees observed for ``fn``."""
        return {callee for caller, callee in self.edges if caller == fn}

    def reachable_from(self, starts: set[str]) -> set[str]:
        """Transitive closure over observed edges from ``starts``."""
        adjacency: dict[str, set[str]] = defaultdict(set)
        for caller, callee in self.edges:
            if caller is not None:
                adjacency[caller].add(callee)
        seen: set[str] = set()
        frontier = [s for s in starts if s in self.nodes]
        while frontier:
            fn = frontier.pop()
            if fn in seen:
                continue
            seen.add(fn)
            frontier.extend(adjacency[fn] - seen)
        return seen

    def total_loc(self) -> int:
        """Sum of LoC over all nodes."""
        return sum(info.loc for info in self.nodes.values())

    def by_subsystem(self) -> dict[str, list[DriverFunctionInfo]]:
        """Nodes grouped by subsystem."""
        out: dict[str, list[DriverFunctionInfo]] = defaultdict(list)
        for info in self.nodes.values():
            out[info.subsystem].append(info)
        return dict(out)
