"""Conditional-compilation projection.

Applies a :class:`~repro.tcb.analyze.MinimizationPlan` the way the paper's
compiler directives would: the minimized build simply does not contain the
excluded functions, so invoking one fails at the driver boundary.  The
build also re-verifies that the plan matches the driver class it is being
applied to, catching plan/driver version skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.drivers.base import Driver
from repro.errors import DriverError
from repro.tcb.analyze import MinimizationPlan


@dataclass(frozen=True)
class MinimizedBuild:
    """A driver class paired with its compiled-out set."""

    driver_class: type[Driver]
    plan: MinimizationPlan

    def __post_init__(self) -> None:
        if self.plan.driver != self.driver_class.NAME:
            raise DriverError(
                f"plan is for driver {self.plan.driver!r}, not "
                f"{self.driver_class.NAME!r}"
            )
        declared = set(self.driver_class.functions())
        stray = set(self.plan.compiled_out) - declared
        if stray:
            raise DriverError(
                f"plan excludes functions the driver does not declare: "
                f"{sorted(stray)}"
            )

    def instantiate(self, *args: Any, **kwargs: Any) -> Driver:
        """Construct the minimized driver instance."""
        return self.driver_class(
            *args, compiled_out=self.plan.compiled_out, **kwargs
        )

    @property
    def loc(self) -> int:
        """LoC present in this build."""
        return self.plan.report.loc_kept

    @property
    def functions(self) -> int:
        """Function count present in this build."""
        return self.plan.report.functions_kept
