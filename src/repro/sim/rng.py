"""Seeded random number generation for reproducible simulation runs.

A single :class:`SimRng` is created per simulation from one master seed and
handed to subsystems via :meth:`SimRng.fork`, which derives independent,
stable child streams by name.  Forking by *name* rather than by call order
means adding a new consumer does not perturb the streams of existing ones —
a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SimRng:
    """A named, forkable wrapper around :class:`numpy.random.Generator`."""

    def __init__(self, seed: int, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        self._gen = np.random.Generator(
            np.random.PCG64(int.from_bytes(digest[:8], "little"))
        )

    @classmethod
    def compat(cls, seed: int, name: str) -> "SimRng":
        """A named stream byte-identical to ``np.random.default_rng(seed)``.

        Migration shim for call sites that historically seeded numpy
        directly: the stream skips the name-digest derivation (the name is
        kept for auditing only), so routing such a site through SimRng
        changes nothing downstream — model weights, decisions and committed
        perf baselines stay byte-for-byte identical for the same seed.
        New consumers should use :meth:`fork`, which isolates streams by
        name.
        """
        rng = cls.__new__(cls)
        rng.seed = int(seed)
        rng.name = name
        rng._gen = np.random.Generator(np.random.PCG64(int(seed)))
        return rng

    def fork(self, name: str) -> "SimRng":
        """Derive an independent child stream identified by ``name``.

        The child depends only on (master seed, full path name), never on
        how many times or in what order other forks were taken.
        """
        return SimRng(self.seed, f"{self.name}/{name}")

    # -- convenience passthroughs ------------------------------------------

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for array-heavy consumers."""
        return self._gen

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def choice(self, seq, p=None):
        """Choose one element of ``seq`` (optionally weighted by ``p``)."""
        idx = self._gen.choice(len(seq), p=p)
        return seq[int(idx)]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle of a Python list."""
        for i in range(len(seq) - 1, 0, -1):
            j = int(self._gen.integers(0, i + 1))
            seq[i], seq[j] = seq[j], seq[i]

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian samples."""
        return self._gen.normal(loc, scale, size)

    def bytes(self, n: int) -> bytes:
        """``n`` random bytes (used by the simulation-grade crypto)."""
        return self._gen.bytes(n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimRng(seed={self.seed}, name={self.name!r})"
