"""Structured event tracing for the simulator.

Subsystems emit :class:`TraceEvent` records into a shared :class:`TraceLog`.
Tests assert on the event stream ("a world switch happened before the driver
read"), the TCB analyzer consumes kernel-tracer events, and benchmarks use
category filters to attribute costs.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One simulation event.

    Attributes
    ----------
    timestamp:
        Clock cycles at emission time.
    category:
        Dotted namespace, e.g. ``"tz.smc"``, ``"optee.ta.invoke"``,
        ``"kernel.ftrace"``.
    name:
        Event name within the category.
    data:
        Arbitrary JSON-ish payload.
    """

    timestamp: int
    category: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)

    def matches(self, category_prefix: str) -> bool:
        """True if this event's category equals or nests under the prefix."""
        return self.category == category_prefix or self.category.startswith(
            category_prefix + "."
        )


class TraceLog:
    """Append-only event log with category filtering.

    A ``capacity`` bound keeps long benchmark runs from accumulating
    unbounded memory; when full, the oldest events are dropped and
    ``dropped_events`` counts them so nothing disappears silently.
    """

    def __init__(self, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self.dropped_events = 0
        self._enabled = True

    def emit(
        self,
        timestamp: int,
        category: str,
        name: str,
        **data: Any,
    ) -> None:
        """Record one event (cheap no-op when disabled)."""
        if not self._enabled:
            return
        if len(self._events) >= self.capacity:
            # Drop the oldest half in one slice; amortizes the O(n) cost.
            # At least one event must go (capacity 1 would otherwise evict
            # nothing), and enough that the append below lands within the
            # bound even if the log somehow overshot it.
            drop = max(1, self.capacity // 2)
            drop = max(drop, len(self._events) - self.capacity + 1)
            self._events = self._events[drop:]
            self.dropped_events += drop
        self._events.append(TraceEvent(timestamp, category, name, data))

    def disable(self) -> None:
        """Stop recording (events already recorded are kept)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume recording."""
        self._enabled = True

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, category_prefix: str | None = None) -> list[TraceEvent]:
        """All events, optionally filtered to a category subtree."""
        if category_prefix is None:
            return list(self._events)
        return [e for e in self._events if e.matches(category_prefix)]

    def count(self, category_prefix: str) -> int:
        """Number of events under a category subtree."""
        return sum(1 for e in self._events if e.matches(category_prefix))

    def last(self, category_prefix: str) -> TraceEvent | None:
        """Most recent event under a category subtree, or ``None``."""
        for event in reversed(self._events):
            if event.matches(category_prefix):
                return event
        return None

    def clear(self) -> None:
        """Drop all recorded events and reset the drop counter."""
        self._events.clear()
        self.dropped_events = 0

    def to_jsonl(self, category_prefix: str | None = None) -> str:
        """Export events as JSON Lines (for external analysis tooling)."""
        import json

        lines = []
        for event in self.events(category_prefix):
            lines.append(
                json.dumps(
                    {
                        "ts": event.timestamp,
                        "category": event.category,
                        "name": event.name,
                        "data": event.data,
                    },
                    default=str,
                )
            )
        return "\n".join(lines)

    @staticmethod
    def from_jsonl(text: str) -> list[TraceEvent]:
        """Parse a JSONL export back into events."""
        import json

        out = []
        for line in text.splitlines():
            if not line.strip():
                continue
            doc = json.loads(line)
            out.append(
                TraceEvent(
                    timestamp=int(doc["ts"]),
                    category=str(doc["category"]),
                    name=str(doc["name"]),
                    data=dict(doc.get("data", {})),
                )
            )
        return out
