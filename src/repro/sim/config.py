"""Top-level simulation configuration.

:class:`SimConfig` gathers the knobs that span subsystems — the master
seed, CPU frequency, and trace capacity — and builds the shared substrate
objects.  Subsystem-specific cost tables live next to their subsystems
(e.g. :class:`repro.tz.costs.CostModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import DEFAULT_FREQ_HZ, SimClock
from repro.sim.rng import SimRng
from repro.sim.trace import TraceLog


@dataclass
class SimConfig:
    """Shared configuration for one simulation instance."""

    seed: int = 42
    freq_hz: float = DEFAULT_FREQ_HZ
    trace_capacity: int = 1_000_000
    trace_enabled: bool = True
    metadata: dict = field(default_factory=dict)

    def build_clock(self) -> SimClock:
        """Create the clock configured by this instance."""
        return SimClock(freq_hz=self.freq_hz)

    def build_rng(self) -> SimRng:
        """Create the master RNG configured by this instance."""
        return SimRng(self.seed)

    def build_trace(self) -> TraceLog:
        """Create the trace log configured by this instance."""
        log = TraceLog(capacity=self.trace_capacity)
        if not self.trace_enabled:
            log.disable()
        return log
