"""Cycle-accurate simulation clock with per-domain accounting.

The clock is the single source of simulated time.  Components never call
``time.time()``; they *charge* cycles to the clock, tagged with the
:class:`CycleDomain` the work ran in (secure CPU, normal CPU, DMA, ...).
The energy model and the benchmark harness read those per-domain counters
back to compute latency, throughput and energy.

The CPU frequency is fixed (the Jetson AGX Xavier's Carmel cores nominally
run at 2.26 GHz; we default to a round 2.0 GHz) so cycles convert to
wall-clock time deterministically.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass, field

#: The default simulated core frequency (see :class:`SimClock`).
DEFAULT_FREQ_HZ = 2.0e9


def cycles_to_ms(cycles: float, freq_hz: float = DEFAULT_FREQ_HZ) -> float:
    """Convert a cycle count to simulated milliseconds.

    Every wall-clock rendering of a cycle figure must go through this
    helper (or :meth:`SimClock.cycles_to_ms` when a clock is in hand)
    instead of hardcoding the 2 GHz default — a machine configured with a
    different ``freq_hz`` would otherwise report wrong milliseconds.
    """
    if freq_hz <= 0:
        raise ValueError(f"freq_hz must be positive, got {freq_hz}")
    return cycles / freq_hz * 1e3


class CycleDomain(enum.Enum):
    """Hardware domain work can be charged to.

    Each domain may draw different power, so the split matters to the
    energy model as well as to overhead attribution in benchmarks.
    """

    NORMAL_CPU = "normal_cpu"
    SECURE_CPU = "secure_cpu"
    MONITOR = "monitor"  # EL3 secure monitor (world switches)
    DMA = "dma"
    PERIPHERAL = "peripheral"
    IDLE = "idle"


@dataclass(frozen=True)
class ClockSnapshot:
    """Immutable snapshot of the clock, used to delta-measure a region."""

    now: int
    per_domain: dict[CycleDomain, int]

    def delta(self, other: "ClockSnapshot") -> dict[CycleDomain, int]:
        """Return per-domain cycles elapsed between ``other`` (earlier) and self."""
        out: dict[CycleDomain, int] = {}
        for domain in CycleDomain:
            diff = self.per_domain.get(domain, 0) - other.per_domain.get(domain, 0)
            if diff:
                out[domain] = diff
        return out


@dataclass
class SimClock:
    """Monotonic cycle counter with per-domain attribution.

    Parameters
    ----------
    freq_hz:
        Simulated core frequency used to convert cycles to seconds.
    """

    freq_hz: float = DEFAULT_FREQ_HZ
    _now: int = 0
    _per_domain: dict[CycleDomain, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    _listeners: list[Callable[[CycleDomain, int], None]] = field(default_factory=list)

    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self._now / self.freq_hz

    def advance(self, cycles: int, domain: CycleDomain) -> int:
        """Charge ``cycles`` of work to ``domain`` and move time forward.

        Returns the new current time.  Raises ``ValueError`` on negative
        charges — time never flows backwards in the simulator.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        if cycles == 0:
            return self._now
        self._now += cycles
        self._per_domain[domain] += cycles
        for listener in self._listeners:
            listener(domain, cycles)
        return self._now

    def cycles_in(self, domain: CycleDomain) -> int:
        """Total cycles charged to ``domain`` so far."""
        return self._per_domain.get(domain, 0)

    def seconds_in(self, domain: CycleDomain) -> float:
        """Total simulated seconds spent in ``domain`` so far."""
        return self.cycles_in(domain) / self.freq_hz

    def to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the configured frequency."""
        return cycles / self.freq_hz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at the configured frequency."""
        return cycles_to_ms(cycles, self.freq_hz)

    def snapshot(self) -> ClockSnapshot:
        """Capture current totals for later delta measurement."""
        return ClockSnapshot(now=self._now, per_domain=dict(self._per_domain))

    def subscribe(self, listener: Callable[[CycleDomain, int], None]) -> None:
        """Register a callback invoked as ``listener(domain, cycles)`` per charge.

        Used by the energy model to integrate power over time.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[CycleDomain, int], None]) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def reset(self) -> None:
        """Zero the clock and all per-domain counters (listeners kept)."""
        self._now = 0
        self._per_domain.clear()
