"""Deterministic fault injection for the normal-world service boundary.

The threat model distrusts the OS *and* the network: the supplicant-mediated
relay path (Fig. 1 steps 6-7) therefore has to be exercised under failure,
not just under success.  :class:`FaultConfig` declares per-operation fault
probabilities and :class:`FaultInjector` samples them from a named
:class:`~repro.sim.rng.SimRng` fork, so a given (seed, config) pair always
injects the *same* fault sequence — runs stay reproducible and regressions
stay bisectable.

Fault kinds (all applied at the supplicant's ``NetworkService``):

``refuse``
    The connection attempt is refused outright; the payload never reaches
    the wire.
``drop``
    The payload reaches the wire (the eavesdropper sees the ciphertext) but
    is lost in transit; the sender observes a timeout and learns nothing
    about delivery.
``corrupt``
    The endpoint processes the request but its reply is bit-flipped on the
    way back; the secure side detects this via AEAD/record authentication.
``latency``
    Delivery succeeds but the round trip is charged extra cycles, modelling
    congestion and retransmission delay.

Rates are evaluated in that order on each send; at most one fault fires
per operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SimRng

FAULT_KINDS = ("refuse", "drop", "corrupt", "latency")


@dataclass(frozen=True)
class FaultConfig:
    """Per-send fault probabilities (independent Bernoulli, ordered)."""

    refuse_rate: float = 0.0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    latency_rate: float = 0.0
    latency_cycles: int = 200_000

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    @property
    def enabled(self) -> bool:
        """True if any fault can ever fire."""
        return any(getattr(self, f"{kind}_rate") > 0 for kind in FAULT_KINDS)

    @classmethod
    def send_failure(cls, rate: float) -> "FaultConfig":
        """A config where ``rate`` of sends fail, split across fault kinds.

        The headline knob for the robustness experiments: refusal, in-transit
        drop and reply corruption each get a third of the failure budget.
        """
        return cls(
            refuse_rate=rate / 3,
            drop_rate=rate / 3,
            corrupt_rate=rate / 3,
        )


class FaultInjector:
    """Samples the fault (if any) for each network operation.

    One draw per configured fault kind per send, taken from a dedicated
    RNG fork — the injector never perturbs any other subsystem's stream.
    """

    def __init__(self, config: FaultConfig, rng: SimRng):
        self.config = config
        self._rng = rng.fork("faults")
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.sends_seen = 0

    def next_fault(self) -> str | None:
        """The fault kind for the next send, or ``None`` for clean delivery."""
        self.sends_seen += 1
        for kind in FAULT_KINDS:
            rate = getattr(self.config, f"{kind}_rate")
            if rate > 0 and self._rng.random() < rate:
                self.counts[kind] += 1
                return kind
        return None

    def corrupt(self, payload: bytes) -> bytes:
        """Deterministically flip bytes of ``payload`` (reply corruption)."""
        if not payload:
            return payload
        out = bytearray(payload)
        idx = self._rng.randint(0, len(out))
        out[idx] ^= 0xFF
        return bytes(out)

    def summary(self) -> dict[str, int]:
        """Fault counts for reports and tests."""
        return {"sends": self.sends_seen, **self.counts}


# ---------------------------------------------------------------------------
# Secure-world (chaos) fault injection
# ---------------------------------------------------------------------------

SECURE_FAULT_KINDS = ("ta_panic", "heap", "pta", "dma", "storage")


@dataclass(frozen=True)
class SecureFaultConfig:
    """Per-operation fault probabilities *inside* the TEE.

    Chaos engineering for the secure world: where :class:`FaultConfig`
    shakes the untrusted network, this shakes the trusted side itself —
    TA hook panics, secure-heap exhaustion, PTA/DMA transfer errors and
    sealed-storage read corruption.  Each kind is an independent Bernoulli
    draw at its own hook point:

    ``ta_panic``
        The next TA lifecycle/invoke hook crashes before running
        (:class:`~repro.errors.InjectedFault` → OP-TEE panic semantics).
    ``heap``
        The next secure-heap allocation fails with ``TeeOutOfMemory``
        (transient pressure: nothing is actually consumed).
    ``pta``
        The next TA→PTA call dies mid-transfer (panics the calling TA).
    ``dma``
        The next DMA FIFO→memory transfer aborts (panics the TA whose
        capture was in flight).
    ``storage``
        The next sealed-storage *read* returns a bit-flipped blob — the
        AEAD rejects it (``AuthenticationFailure``), modelling transient
        normal-world filesystem flakiness.  Blobs at rest are untouched,
        so a later retry can succeed.
    """

    ta_panic_rate: float = 0.0
    heap_rate: float = 0.0
    pta_rate: float = 0.0
    dma_rate: float = 0.0
    storage_rate: float = 0.0

    def __post_init__(self) -> None:
        for kind in SECURE_FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")

    @property
    def enabled(self) -> bool:
        """True if any secure-world fault can ever fire."""
        return any(
            getattr(self, f"{kind}_rate") > 0 for kind in SECURE_FAULT_KINDS
        )

    @classmethod
    def chaos(cls, intensity: float = 1.0) -> "SecureFaultConfig":
        """The stock ``--chaos`` profile, scaled by ``intensity``.

        Rates are tuned so a short workload sees several panics and at
        least one of every other fault kind without making recovery
        hopeless (restart attempts themselves can be hit again).
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        return cls(
            ta_panic_rate=0.05 * intensity,
            heap_rate=0.02 * intensity,
            pta_rate=0.02 * intensity,
            dma_rate=0.02 * intensity,
            storage_rate=0.10 * intensity,
        )


# ---------------------------------------------------------------------------
# Normal-world client crash/restart chaos
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClientCrashConfig:
    """Crash/restart chaos for the normal-world client *application*.

    Orthogonal to both fault families above: the network can be perfect
    and the TEE healthy, and the client process still dies — OOM-killed,
    segfaulted, upgraded.  The session object and every client-side
    counter vanish with it; recovery must come from the TA's sealed
    checkpoint + store-and-forward queue alone (via ``CMD_RESUME``).

    ``rate`` is the per-utterance Bernoulli probability of crashing
    *before* that utterance is submitted; ``max_crashes`` caps the count
    per run (0 = unlimited) so a high rate cannot starve a short
    workload of forward progress.
    """

    rate: float = 0.0
    max_crashes: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_crashes < 0:
            raise ValueError("max_crashes must be non-negative")

    @property
    def enabled(self) -> bool:
        """True if a crash can ever fire."""
        return self.rate > 0.0

    @classmethod
    def chaos(cls, rate: float = 0.2, max_crashes: int = 2) -> "ClientCrashConfig":
        """The stock client-crash profile: a short workload sees 1–2 crashes."""
        return cls(rate=rate, max_crashes=max_crashes)


class ClientCrashInjector:
    """Samples client crash points from a dedicated RNG fork.

    One draw per utterance boundary; the fork (``client-crash``) is
    never shared, so enabling crashes shifts no other subsystem's
    stream and the crash schedule for a given (seed, config) is fixed.
    """

    def __init__(self, config: ClientCrashConfig, rng: SimRng):
        self.config = config
        self._rng = rng.fork("client-crash")
        self.crashes = 0
        self.draws = 0

    def fires(self) -> bool:
        """Whether the client crashes before the next utterance."""
        if not self.config.enabled:
            return False
        if self.config.max_crashes and self.crashes >= self.config.max_crashes:
            return False
        self.draws += 1
        if self._rng.random() < self.config.rate:
            self.crashes += 1
            return True
        return False


class SecureFaultInjector:
    """Samples secure-world faults, one dedicated RNG stream per kind.

    Per-kind forks (not one shared stream) keep the fault sequence of each
    hook point independent of how often the *other* hooks run: adding a
    storage read cannot shift which TA invoke panics.  Kinds with rate 0
    never draw, so a partially-zero config stays bisectable too.
    """

    def __init__(self, config: SecureFaultConfig, rng: SimRng):
        self.config = config
        base = rng.fork("secure-faults")
        self._rngs = {kind: base.fork(kind) for kind in SECURE_FAULT_KINDS}
        self.counts: dict[str, int] = {kind: 0 for kind in SECURE_FAULT_KINDS}
        self.draws: dict[str, int] = {kind: 0 for kind in SECURE_FAULT_KINDS}

    def fires(self, kind: str) -> bool:
        """Whether fault ``kind`` fires at this hook crossing."""
        rate = getattr(self.config, f"{kind}_rate")
        if rate <= 0:
            return False
        self.draws[kind] += 1
        if self._rngs[kind].random() < rate:
            self.counts[kind] += 1
            return True
        return False

    def corrupt(self, payload: bytes) -> bytes:
        """Deterministically flip one byte (storage read corruption)."""
        if not payload:
            return payload
        out = bytearray(payload)
        idx = self._rngs["storage"].randint(0, len(out))
        out[idx] ^= 0xFF
        return bytes(out)

    def summary(self) -> dict[str, dict[str, int]]:
        """Injected counts and draw totals for reports and tests."""
        return {"counts": dict(self.counts), "draws": dict(self.draws)}
