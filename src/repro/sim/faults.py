"""Deterministic fault injection for the normal-world service boundary.

The threat model distrusts the OS *and* the network: the supplicant-mediated
relay path (Fig. 1 steps 6-7) therefore has to be exercised under failure,
not just under success.  :class:`FaultConfig` declares per-operation fault
probabilities and :class:`FaultInjector` samples them from a named
:class:`~repro.sim.rng.SimRng` fork, so a given (seed, config) pair always
injects the *same* fault sequence — runs stay reproducible and regressions
stay bisectable.

Fault kinds (all applied at the supplicant's ``NetworkService``):

``refuse``
    The connection attempt is refused outright; the payload never reaches
    the wire.
``drop``
    The payload reaches the wire (the eavesdropper sees the ciphertext) but
    is lost in transit; the sender observes a timeout and learns nothing
    about delivery.
``corrupt``
    The endpoint processes the request but its reply is bit-flipped on the
    way back; the secure side detects this via AEAD/record authentication.
``latency``
    Delivery succeeds but the round trip is charged extra cycles, modelling
    congestion and retransmission delay.

Rates are evaluated in that order on each send; at most one fault fires
per operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SimRng

FAULT_KINDS = ("refuse", "drop", "corrupt", "latency")


@dataclass(frozen=True)
class FaultConfig:
    """Per-send fault probabilities (independent Bernoulli, ordered)."""

    refuse_rate: float = 0.0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    latency_rate: float = 0.0
    latency_cycles: int = 200_000

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    @property
    def enabled(self) -> bool:
        """True if any fault can ever fire."""
        return any(getattr(self, f"{kind}_rate") > 0 for kind in FAULT_KINDS)

    @classmethod
    def send_failure(cls, rate: float) -> "FaultConfig":
        """A config where ``rate`` of sends fail, split across fault kinds.

        The headline knob for the robustness experiments: refusal, in-transit
        drop and reply corruption each get a third of the failure budget.
        """
        return cls(
            refuse_rate=rate / 3,
            drop_rate=rate / 3,
            corrupt_rate=rate / 3,
        )


class FaultInjector:
    """Samples the fault (if any) for each network operation.

    One draw per configured fault kind per send, taken from a dedicated
    RNG fork — the injector never perturbs any other subsystem's stream.
    """

    def __init__(self, config: FaultConfig, rng: SimRng):
        self.config = config
        self._rng = rng.fork("faults")
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.sends_seen = 0

    def next_fault(self) -> str | None:
        """The fault kind for the next send, or ``None`` for clean delivery."""
        self.sends_seen += 1
        for kind in FAULT_KINDS:
            rate = getattr(self.config, f"{kind}_rate")
            if rate > 0 and self._rng.random() < rate:
                self.counts[kind] += 1
                return kind
        return None

    def corrupt(self, payload: bytes) -> bytes:
        """Deterministically flip bytes of ``payload`` (reply corruption)."""
        if not payload:
            return payload
        out = bytearray(payload)
        idx = self._rng.randint(0, len(out))
        out[idx] ^= 0xFF
        return bytes(out)

    def summary(self) -> dict[str, int]:
        """Fault counts for reports and tests."""
        return {"sends": self.sends_seen, **self.counts}
