"""Deterministic simulation substrate.

Everything in the repro stack runs on top of this package: a cycle-accurate
:class:`~repro.sim.clock.SimClock` that subsystems charge work to, a seeded
:class:`~repro.sim.rng.SimRng` so every run is reproducible, and a
structured :class:`~repro.sim.trace.TraceLog` that records simulation events
for tests, debugging and the benchmark harness.
"""

from repro.sim.clock import CycleDomain, SimClock
from repro.sim.config import SimConfig
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.rng import SimRng
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "CycleDomain",
    "FaultConfig",
    "FaultInjector",
    "SimClock",
    "SimConfig",
    "SimRng",
    "TraceEvent",
    "TraceLog",
]
