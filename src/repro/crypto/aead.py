"""Authenticated encryption (simulation-grade).

``StreamAead`` is encrypt-then-MAC: an SHA-256 counter-mode keystream for
confidentiality and HMAC-SHA-256 over (nonce, associated data, ciphertext)
for integrity.  The construction is structurally sound but unreviewed and
unoptimized — see the package docstring's warning.  What the reproduction
needs from it holds: without the key, ciphertext reveals nothing a test
can detect, and any bit flip fails authentication.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import struct

from repro.errors import AuthenticationFailure, CryptoError
from repro.crypto.kdf import hmac_sha256

TAG_LEN = 32
NONCE_LEN = 12


class StreamAead:
    """AEAD cipher bound to one key (separate enc/mac subkeys derived)."""

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise CryptoError(f"key too short: {len(key)} bytes")
        self._enc_key = hmac_sha256(key, b"enc")
        self._mac_key = hmac_sha256(key, b"mac")

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + 31) // 32):
            block = hashlib.sha256(
                self._enc_key + nonce + struct.pack("<Q", counter)
            ).digest()
            blocks.append(block)
        return b"".join(blocks)[:length]

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(nonce) != NONCE_LEN:
            raise CryptoError(f"nonce must be {NONCE_LEN} bytes")
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac_sha256(self._mac_key, nonce + _len_prefix(aad) + ciphertext)
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`AuthenticationFailure` on tamper."""
        if len(nonce) != NONCE_LEN:
            raise CryptoError(f"nonce must be {NONCE_LEN} bytes")
        if len(sealed) < TAG_LEN:
            raise AuthenticationFailure("sealed blob shorter than tag")
        ciphertext, tag = sealed[:-TAG_LEN], sealed[-TAG_LEN:]
        expect = hmac_sha256(self._mac_key, nonce + _len_prefix(aad) + ciphertext)
        if not _hmac.compare_digest(tag, expect):
            raise AuthenticationFailure("AEAD tag mismatch")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))


def _len_prefix(aad: bytes) -> bytes:
    """Length-prefix the AAD so (aad, ct) boundaries are unambiguous."""
    return struct.pack("<Q", len(aad)) + aad
