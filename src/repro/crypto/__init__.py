"""Simulation-grade cryptographic primitives.

.. warning::
   **Not production cryptography.**  These primitives exist so the
   reproduction can model *where* encryption happens in the paper's design
   (sealed secure storage; the relay's TLS channel) and *what an untrusted
   observer sees* (ciphertext, not plaintext), with realistic cost
   accounting.  The KDF and MAC are real HMAC-SHA-256 from the standard
   library; the stream cipher is an SHA-256-in-counter-mode construction
   chosen for zero dependencies, and the key exchange is classic
   finite-field Diffie-Hellman over the RFC 3526 group-14 prime.  None of
   this has been hardened against side channels or misuse.
"""

from repro.crypto.aead import StreamAead
from repro.crypto.dh import DhKeyPair, MODP_GROUP_14
from repro.crypto.kdf import hkdf_expand, hkdf_extract, hmac_sha256

__all__ = [
    "DhKeyPair",
    "MODP_GROUP_14",
    "StreamAead",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
]
