"""Finite-field Diffie-Hellman over RFC 3526 group 14.

Used by the relay's TLS-like handshake for its (EC)DHE step.  Classic
textbook DH: correct, slow, and adequate for a simulator — the *cost* of
the asymmetric step is charged from the cost model, not measured from this
Python implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CryptoError

# RFC 3526, 2048-bit MODP Group 14 prime; generator 2.
MODP_GROUP_14 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GENERATOR = 2
KEY_BYTES = 256  # 2048 bits


@dataclass(frozen=True)
class DhKeyPair:
    """One party's ephemeral DH key pair."""

    private: int
    public: int

    @classmethod
    def generate(cls, random_bytes: bytes) -> "DhKeyPair":
        """Create a key pair from caller-supplied randomness (>= 32 bytes)."""
        if len(random_bytes) < 32:
            raise CryptoError("need at least 32 bytes of randomness")
        private = int.from_bytes(random_bytes, "big") % (MODP_GROUP_14 - 2) + 2
        public = pow(GENERATOR, private, MODP_GROUP_14)
        return cls(private=private, public=public)

    def shared_secret(self, peer_public: int) -> bytes:
        """Compute the shared secret with a peer's public value."""
        if not 2 <= peer_public <= MODP_GROUP_14 - 2:
            raise CryptoError("peer public value out of range")
        secret = pow(peer_public, self.private, MODP_GROUP_14)
        return secret.to_bytes(KEY_BYTES, "big")

    def public_bytes(self) -> bytes:
        """Wire encoding of the public value."""
        return self.public.to_bytes(KEY_BYTES, "big")
