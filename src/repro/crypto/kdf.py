"""HMAC-SHA-256 and HKDF (RFC 5869).

These are the genuine constructions (stdlib-backed); the TEE uses them to
derive sealing keys from the device key and TLS traffic keys from the
handshake secret.
"""

from __future__ import annotations

import hashlib
import hmac

HASH_LEN = 32


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 of ``data`` under ``key``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: concentrate input keying material into a PRK."""
    if not salt:
        salt = b"\x00" * HASH_LEN
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    if length > 255 * HASH_LEN:
        raise ValueError("HKDF-Expand length too large")
    blocks = []
    prev = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        prev = hmac_sha256(prk, prev + info + bytes([counter]))
        blocks.append(prev)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(master: bytes, label: str, length: int = 32) -> bytes:
    """One-step labelled key derivation (extract-then-expand)."""
    prk = hkdf_extract(b"repro/kdf/v1", master)
    return hkdf_expand(prk, label.encode(), length)
