"""The normal-world kernel: char devices and syscalls.

A thin but real kernel layer: drivers are exposed as character devices,
userland reaches them through a file-descriptor table and syscalls with
errno-style failures, and the ftrace tracer can be armed around any task.
The baseline (insecure) pipeline drives audio capture through this exact
interface, so the overhead comparison against the TEE path is apples to
apples: both pay their respective entry costs (syscall vs SMC).
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DeviceNotFound, SyscallError
from repro.kernel.tracer import FunctionTracer
from repro.tz.machine import TrustZoneMachine


class CharDevice(Protocol):
    """Character-device operations a driver adapter implements."""

    def dev_open(self) -> None: ...

    def dev_read(self, n: int) -> bytes: ...

    def dev_ioctl(self, request: str, arg: Any = None) -> Any: ...

    def dev_close(self) -> None: ...


class I2sCharDevice:
    """ALSA-flavoured char device adapter over :class:`I2sDriver`.

    ioctl requests (string-keyed, one per driver entry point the capture
    and mixer tasks need):

    ====================  =============================================
    request               effect
    ====================  =============================================
    ``OPEN_CAPTURE``      ``pcm_open_capture(arg=chunk_frames)``
    ``START`` / ``STOP``  trigger start/stop
    ``CLOSE_PCM``         close the stream
    ``SET_VOLUME``        mixer volume (arg=percent)
    ``GET_VOLUME``        returns percent
    ``SET_MUTE``          arg=bool
    ``POINTER``           frames captured so far
    ``DUMP_REGS``         debugfs-style register dump
    ====================  =============================================
    """

    def __init__(self, driver: I2sDriver):
        self.driver = driver
        self._open = False
        self._pending = b""

    def dev_open(self) -> None:
        """Open the device node (probes the driver on first open)."""
        if self.driver.state == "unbound":
            self.driver.probe()
        self._open = True

    def dev_read(self, n: int) -> bytes:
        """Read ``n`` bytes of captured PCM (captures chunks on demand)."""
        if not self._open:
            raise SyscallError("EBADF", "device not open")
        if self.driver.state != "capturing":
            raise SyscallError("EINVAL", "capture not started")
        while len(self._pending) < n:
            pcm = self.driver.read_chunk()
            self._pending += pcm.astype("<i2").tobytes()
        out, self._pending = self._pending[:n], self._pending[n:]
        return out

    def dev_ioctl(self, request: str, arg: Any = None) -> Any:
        """Dispatch one control request."""
        if not self._open:
            raise SyscallError("EBADF", "device not open")
        driver = self.driver
        if request == "OPEN_CAPTURE":
            driver.pcm_open_capture(int(arg))
            return None
        if request == "START":
            driver.trigger_start()
            return None
        if request == "STOP":
            driver.trigger_stop()
            return None
        if request == "CLOSE_PCM":
            driver.pcm_close()
            self._pending = b""
            return None
        if request == "SET_VOLUME":
            driver.set_volume(int(arg))
            return None
        if request == "GET_VOLUME":
            return driver.get_volume()
        if request == "SET_MUTE":
            driver.set_mute(bool(arg))
            return None
        if request == "POINTER":
            return driver.pcm_pointer()
        if request == "DUMP_REGS":
            return driver.dump_registers()
        raise SyscallError("ENOTTY", f"unknown ioctl {request!r}")

    def dev_close(self) -> None:
        """Close the device node."""
        self._open = False
        self._pending = b""


class Kernel:
    """The untrusted OS: device registry, fd table, syscall surface."""

    def __init__(self, machine: TrustZoneMachine):
        self.machine = machine
        self.driver_host = KernelDriverHost(machine)
        self.tracer = FunctionTracer()
        self.driver_host.attach_tracer(self.tracer)
        self._devices: dict[str, CharDevice] = {}
        self._fds: dict[int, CharDevice] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands
        self.syscall_count = 0

    # -- device management ----------------------------------------------------

    def register_device(self, path: str, device: CharDevice) -> None:
        """Create a device node at ``path`` (e.g. ``"/dev/snd/i2s0"``)."""
        self._devices[path] = device

    def device(self, path: str) -> CharDevice:
        """Look up a registered device."""
        if path not in self._devices:
            raise DeviceNotFound(path)
        return self._devices[path]

    # -- syscalls ------------------------------------------------------------------

    def _enter(self) -> None:
        self.syscall_count += 1
        self.machine.cpu.execute(self.machine.costs.syscall_cycles)

    def sys_open(self, path: str) -> int:
        """Open a device node; returns a file descriptor."""
        self._enter()
        device = self._devices.get(path)
        if device is None:
            raise SyscallError("ENOENT", path)
        device.dev_open()
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = device
        return fd

    def sys_read(self, fd: int, n: int) -> bytes:
        """Read from an open descriptor."""
        self._enter()
        return self._fd(fd).dev_read(n)

    def sys_ioctl(self, fd: int, request: str, arg: Any = None) -> Any:
        """Control an open descriptor."""
        self._enter()
        return self._fd(fd).dev_ioctl(request, arg)

    def sys_close(self, fd: int) -> None:
        """Close a descriptor."""
        self._enter()
        device = self._fds.pop(fd, None)
        if device is None:
            raise SyscallError("EBADF", str(fd))
        device.dev_close()

    def _fd(self, fd: int) -> CharDevice:
        device = self._fds.get(fd)
        if device is None:
            raise SyscallError("EBADF", str(fd))
        return device

    # -- convenience: capture PCM via the syscall interface -------------------------

    def capture_pcm(self, path: str, frames: int, chunk_frames: int = 256) -> np.ndarray:
        """Record ``frames`` samples through open/ioctl/read/close."""
        fd = self.sys_open(path)
        try:
            self.sys_ioctl(fd, "OPEN_CAPTURE", chunk_frames)
            self.sys_ioctl(fd, "START")
            raw = self.sys_read(fd, frames * 2)
            self.sys_ioctl(fd, "STOP")
            self.sys_ioctl(fd, "CLOSE_PCM")
        finally:
            self.sys_close(fd)
        return np.frombuffer(raw, dtype="<i2").astype(np.int16)
