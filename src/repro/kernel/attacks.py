"""Attack models for the compromised normal world.

The paper's threat model (Section I): sensitive peripheral data leaks both
to the cloud provider and to a compromised OS.  These models give the
threat teeth so the evaluation can *measure* it:

* :class:`BufferSnoopAttack` — a rooted OS reads the driver's I/O buffers
  directly (it knows their addresses; it allocated them in the baseline).
* :class:`MemoryScanner` — a cold-boot style sweep of all normal-world
  readable memory for a byte pattern.
* :class:`WireEavesdropper` — observes every byte the device sends to the
  network (the supplicant's wire log).

Each attack runs with normal-world privileges only; against the secure
configuration its reads hit TZASC faults, which the result records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SecureAccessViolation
from repro.optee.supplicant import NetworkService
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import SecurityAttr
from repro.tz.worlds import World


@dataclass
class AttackResult:
    """What an attack run obtained."""

    captured: list[bytes] = field(default_factory=list)
    violations: int = 0
    attempted: int = 0

    @property
    def succeeded(self) -> bool:
        """True if the attacker obtained any bytes at all."""
        return any(len(c) > 0 for c in self.captured)

    @property
    def bytes_captured(self) -> int:
        """Total bytes exfiltrated."""
        return sum(len(c) for c in self.captured)


class BufferSnoopAttack:
    """Compromised OS reads driver I/O buffers by address.

    ``targets`` is a list of ``(addr, size)`` pairs — in the baseline these
    are the kernel host's own allocations, which a rooted OS trivially
    knows; for the secure configuration they are the secure driver's
    buffer addresses, which an attacker could learn from a leaked log but
    still cannot *read*.
    """

    def __init__(self, machine: TrustZoneMachine):
        self.machine = machine

    def run(self, targets: list[tuple[int, int]]) -> AttackResult:
        """Attempt an architectural normal-world read of every target."""
        result = AttackResult()
        for addr, size in targets:
            result.attempted += 1
            try:
                data = self.machine.memory.read(addr, size, World.NORMAL)
                result.captured.append(data)
            except SecureAccessViolation:
                result.violations += 1
        self.machine.trace.emit(
            self.machine.clock.now, "attack.snoop", "run",
            attempted=result.attempted,
            captured=len(result.captured),
            violations=result.violations,
        )
        return result


class MemoryScanner:
    """Whole-memory sweep for a byte pattern, normal-world privileges.

    The access-control probe is architectural (one read per region, so the
    TZASC verdict is authoritative); the byte search within an accessible
    region then uses the raw backing store to keep simulation time sane —
    semantically identical to reading the whole region, minus the cycle
    charge, which :attr:`charge_scan` re-adds in one lump.
    """

    def __init__(self, machine: TrustZoneMachine, charge_scan: bool = True):
        self.machine = machine
        self.charge_scan = charge_scan

    def scan(self, pattern: bytes) -> AttackResult:
        """Find all occurrences of ``pattern`` in readable memory."""
        if not pattern:
            raise ValueError("empty scan pattern")
        result = AttackResult()
        for region in self.machine.memory.regions():
            if region.device:
                continue  # scanning MMIO would perturb device state
            result.attempted += 1
            try:
                self.machine.memory.read(region.base, 1, World.NORMAL)
            except SecureAccessViolation:
                result.violations += 1
                continue
            if self.charge_scan:
                cycles = self.machine.costs.mem_copy_cycles(region.size, False)
                self.machine.clock.advance(cycles, World.NORMAL.domain)
            blob = region.read_raw(region.base, region.size)
            start = 0
            while True:
                idx = blob.find(pattern, start)
                if idx < 0:
                    break
                result.captured.append(blob[idx : idx + len(pattern)])
                start = idx + 1
        return result

    def readable_regions(self) -> list[str]:
        """Names of regions the normal world can read (reconnaissance)."""
        out = []
        for region in self.machine.memory.regions():
            if self.machine.memory.tzasc.attr_of(region) is SecurityAttr.NONSECURE:
                out.append(region.name)
        return out


class WireEavesdropper:
    """Observes all traffic the device sent to the network."""

    def __init__(self, net: NetworkService):
        self.net = net

    def run(self) -> AttackResult:
        """Capture the full wire log (always 'succeeds'; the question is
        whether the captured bytes are plaintext or ciphertext)."""
        result = AttackResult()
        result.attempted = len(self.net.wire_log)
        result.captured = [bytes(b) for b in self.net.wire_log]
        return result

    def plaintext_hits(self, needles: list[bytes]) -> int:
        """How many needles appear verbatim in the captured traffic."""
        joined = b"".join(self.net.wire_log)
        return sum(1 for n in needles if n and n in joined)
