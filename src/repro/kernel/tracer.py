"""Ftrace-style driver function tracer.

Implements the paper's research plan item 2: "a tracing mechanism within
the kernel which permits to identify a minimal set of driver functionality
to be ported to OP-TEE.  This tracing mechanism involves logging of driver
function calls when a particular task, e.g., recording a sound, is being
executed."

Drivers emit call records through their host's ``on_driver_call`` hook;
while a trace session is active, each record lands here with caller
attribution.  The resulting :class:`TraceSession` is the input to the TCB
analyzer (:mod:`repro.tcb`), which computes the minimal function set and
the conditional-compilation projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.drivers.base import DriverFunctionInfo
from repro.errors import KernelError


@dataclass(frozen=True)
class CallRecord:
    """One logged driver function call."""

    driver: str
    fn: str
    caller: str | None
    loc: int
    subsystem: str


@dataclass
class TraceSession:
    """All calls logged while one task ran."""

    task: str
    records: list[CallRecord] = field(default_factory=list)

    def functions_used(self, driver: str | None = None) -> set[str]:
        """Distinct functions the task executed (optionally per driver)."""
        return {
            r.fn for r in self.records if driver is None or r.driver == driver
        }

    def call_edges(self, driver: str | None = None) -> set[tuple[str | None, str]]:
        """Distinct (caller, callee) edges observed."""
        return {
            (r.caller, r.fn)
            for r in self.records
            if driver is None or r.driver == driver
        }

    def loc_used(self, driver: str | None = None) -> int:
        """Total LoC of the distinct functions used."""
        seen: dict[str, int] = {}
        for r in self.records:
            if driver is None or r.driver == driver:
                seen[r.fn] = r.loc
        return sum(seen.values())

    def calls_by_subsystem(self) -> dict[str, int]:
        """Call counts grouped by driver subsystem."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.subsystem] = out.get(r.subsystem, 0) + 1
        return out


class FunctionTracer:
    """The kernel's tracing facility; one session at a time."""

    def __init__(self) -> None:
        self._current: TraceSession | None = None
        self.sessions: dict[str, TraceSession] = {}

    @property
    def active(self) -> bool:
        """True while a session is recording."""
        return self._current is not None

    def start(self, task: str) -> None:
        """Begin logging under a task label."""
        if self._current is not None:
            raise KernelError(
                f"tracer busy with task {self._current.task!r}"
            )
        self._current = TraceSession(task=task)

    def record(
        self, driver: str, info: DriverFunctionInfo, caller: str | None
    ) -> None:
        """Log one call (invoked from the driver host hook)."""
        if self._current is None:
            return
        self._current.records.append(
            CallRecord(
                driver=driver,
                fn=info.name,
                caller=caller,
                loc=info.loc,
                subsystem=info.subsystem,
            )
        )

    def stop(self) -> TraceSession:
        """End the session and archive it by task label."""
        if self._current is None:
            raise KernelError("tracer is not running")
        session = self._current
        self._current = None
        self.sessions[session.task] = session
        return session

    def session(self, task: str) -> TraceSession:
        """Retrieve an archived session."""
        if task not in self.sessions:
            raise KernelError(f"no trace session for task {task!r}")
        return self.sessions[task]
