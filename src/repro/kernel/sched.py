"""Processes and a round-robin scheduler for the untrusted kernel.

Gives the normal world realistic multiprogramming: the voice-assistant
client is one process among several, the scheduler charges context
switches, and background load steals time slices — which is how the
contention experiment measures capture-latency jitter.  An attacker can
also run *as a process*, modelling malware that arrived through the
normal software-distribution path rather than an abstract adversary.

The model is a cooperative discrete scheduler over the simulation clock:
each process is a generator that yields the number of cycles it wants to
burn before its next scheduling point; the scheduler interleaves runnable
processes in time slices, advancing the shared clock.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator
from dataclasses import dataclass, field

from repro.errors import KernelError
from repro.tz.machine import TrustZoneMachine
from repro.tz.worlds import World

ProcessBody = Callable[["Process"], Generator[int, None, None]]


class ProcessState(enum.Enum):
    """Lifecycle of a kernel process."""

    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    FAULTED = "faulted"


@dataclass
class Process:
    """One schedulable normal-world process."""

    name: str
    body: ProcessBody
    pid: int = 0
    state: ProcessState = ProcessState.READY
    cpu_cycles: int = 0
    slices_run: int = 0
    exception: BaseException | None = None
    _gen: Generator[int, None, None] | None = field(default=None, repr=False)

    def start(self) -> None:
        """Instantiate the process body."""
        self._gen = self.body(self)

    def step(self) -> int | None:
        """Advance to the next yield; returns requested cycles or None."""
        assert self._gen is not None, "process not started"
        try:
            return next(self._gen)
        except StopIteration:
            self.state = ProcessState.DONE
            return None
        except Exception as exc:  # the process crashed; kernel survives
            self.state = ProcessState.FAULTED
            self.exception = exc
            return None


class Scheduler:
    """Round-robin over READY processes with a fixed time slice."""

    def __init__(
        self,
        machine: TrustZoneMachine,
        time_slice_cycles: int = 100_000,
    ):
        if time_slice_cycles <= 0:
            raise KernelError("time slice must be positive")
        self.machine = machine
        self.time_slice_cycles = time_slice_cycles
        self._processes: list[Process] = []
        self._next_pid = 1
        self.context_switches = 0

    def spawn(self, name: str, body: ProcessBody) -> Process:
        """Create and register a process."""
        process = Process(name=name, body=body, pid=self._next_pid)
        self._next_pid += 1
        process.start()
        self._processes.append(process)
        return process

    @property
    def runnable(self) -> list[Process]:
        """Processes still wanting CPU."""
        return [p for p in self._processes if p.state is ProcessState.READY]

    def run(self, max_slices: int = 100_000) -> None:
        """Schedule until every process finishes (or the slice budget ends).

        Each slice: charge a context switch, run the process for up to one
        time slice of its requested work (larger requests are split across
        slices), then move on.
        """
        pending: dict[int, int] = {}  # pid -> cycles still owed this request
        slices = 0
        while self.runnable:
            if slices >= max_slices:
                raise KernelError("scheduler slice budget exhausted")
            for process in list(self.runnable):
                if slices >= max_slices:
                    break
                slices += 1
                self.context_switches += 1
                self.machine.cpu.execute(
                    self.machine.costs.context_switch_cycles
                )
                owed = pending.get(process.pid, 0)
                if owed == 0:
                    request = process.step()
                    if request is None:
                        continue
                    owed = max(0, int(request))
                burn = min(owed, self.time_slice_cycles)
                if burn:
                    self.machine.cpu.execute(burn)
                    process.cpu_cycles += burn
                process.slices_run += 1
                remaining = owed - burn
                if remaining > 0:
                    pending[process.pid] = remaining
                else:
                    pending.pop(process.pid, None)

    def stats(self) -> dict[str, dict]:
        """Per-process accounting."""
        return {
            p.name: {
                "pid": p.pid,
                "state": p.state.value,
                "cpu_cycles": p.cpu_cycles,
                "slices": p.slices_run,
            }
            for p in self._processes
        }


def busy_loop(total_cycles: int, chunk: int = 50_000) -> ProcessBody:
    """A CPU-bound background process body (synthetic load)."""

    def body(process: Process) -> Generator[int, None, None]:
        remaining = total_cycles
        while remaining > 0:
            burn = min(chunk, remaining)
            remaining -= burn
            yield burn

    return body
