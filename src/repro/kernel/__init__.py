"""The untrusted normal-world kernel.

In the paper's threat model "privileged software like the operating system
can be compromised" — so this kernel plays two roles: the legitimate
substrate hosting baseline drivers behind char devices and syscalls, and
the adversary.  :mod:`~repro.kernel.attacks` implements the compromise:
buffer snooping, full-memory scanning, and wire eavesdropping, each of
which succeeds against the baseline configuration and is defeated by the
secure design (asserted by the security test suite).

:mod:`~repro.kernel.tracer` is the paper's TCB-minimization instrument: an
ftrace-style function-call logger that records which driver functions a
task actually executes.
"""

from repro.kernel.attacks import (
    AttackResult,
    BufferSnoopAttack,
    MemoryScanner,
    WireEavesdropper,
)
from repro.kernel.kernel import CharDevice, I2sCharDevice, Kernel
from repro.kernel.sched import Process, ProcessState, Scheduler, busy_loop
from repro.kernel.tracer import FunctionTracer, TraceSession

__all__ = [
    "AttackResult",
    "BufferSnoopAttack",
    "CharDevice",
    "FunctionTracer",
    "I2sCharDevice",
    "Kernel",
    "MemoryScanner",
    "Process",
    "ProcessState",
    "Scheduler",
    "TraceSession",
    "WireEavesdropper",
    "busy_loop",
]
