"""Battery-life projection.

Turns per-utterance energy measurements into the number an IoT product
team actually argues about: days on a battery.  Models a duty-cycled
device — mostly idle at the power model's idle draw, waking to process
utterances at a given rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.model import PowerModel

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class BatteryProjection:
    """Estimated lifetime for one configuration."""

    battery_mwh: float
    utterances_per_day: float
    energy_per_utterance_mj: float
    idle_power_mw: float

    @property
    def active_mj_per_day(self) -> float:
        """Daily energy spent processing utterances."""
        return self.utterances_per_day * self.energy_per_utterance_mj

    @property
    def idle_mj_per_day(self) -> float:
        """Daily idle floor."""
        return self.idle_power_mw * _SECONDS_PER_DAY

    @property
    def days(self) -> float:
        """Projected battery life in days."""
        per_day_mj = self.active_mj_per_day + self.idle_mj_per_day
        budget_mj = self.battery_mwh * 3600.0  # mWh -> mJ
        if per_day_mj <= 0:
            return float("inf")
        return budget_mj / per_day_mj


def project_battery_life(
    energy_per_utterance_mj: float,
    utterances_per_day: float = 200.0,
    battery_mwh: float = 18_500.0,  # ~5000 mAh at 3.7 V
    power: PowerModel | None = None,
) -> BatteryProjection:
    """Project lifetime from a measured per-utterance energy figure."""
    if energy_per_utterance_mj < 0:
        raise ValueError("energy per utterance cannot be negative")
    if utterances_per_day < 0:
        raise ValueError("utterance rate cannot be negative")
    if battery_mwh <= 0:
        raise ValueError("battery capacity must be positive")
    model = power or PowerModel()
    return BatteryProjection(
        battery_mwh=battery_mwh,
        utterances_per_day=utterances_per_day,
        energy_per_utterance_mj=energy_per_utterance_mj,
        idle_power_mw=model.idle_mw,
    )


def compare_days(
    baseline_mj: float,
    secure_mj: float,
    **kwargs,
) -> dict[str, float]:
    """Battery-days for both configurations plus the relative cost."""
    baseline = project_battery_life(baseline_mj, **kwargs)
    secure = project_battery_life(secure_mj, **kwargs)
    return {
        "baseline_days": baseline.days,
        "secure_days": secure.days,
        "days_lost_pct": 100.0 * (1 - secure.days / baseline.days)
        if baseline.days
        else 0.0,
    }
