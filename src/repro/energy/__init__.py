"""Energy accounting.

Substitutes for power measurement on the Jetson (DESIGN.md): a per-domain
power model integrated over simulated time.  The paper (Sections III, V)
anticipates "increased power consumption" from running drivers and ML in
the TEE on a low-power device; experiment T4 quantifies that with this
model.
"""

from repro.energy.model import EnergyMeter, EnergyReport, PowerModel

__all__ = ["EnergyMeter", "EnergyReport", "PowerModel"]
