"""Per-domain power model and energy meter.

Power figures are representative of a Jetson-class module in a mid DVFS
state (CPU rails a couple of watts, DMA and peripherals far below).  The
secure CPU draws slightly more than the normal CPU for the same cycle
count — TEE exception-level plumbing and cache behaviour — and the
monitor's world-switch work is charged at the higher secure rate too.
As with the cycle cost model, the *relative* structure is what the
reproduction's trends rest on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import CycleDomain, SimClock


@dataclass(frozen=True)
class PowerModel:
    """Active power per clock domain, in milliwatts."""

    normal_cpu_mw: float = 2000.0
    secure_cpu_mw: float = 2150.0
    monitor_mw: float = 2400.0
    dma_mw: float = 180.0
    peripheral_mw: float = 60.0
    idle_mw: float = 15.0

    def power_mw(self, domain: CycleDomain) -> float:
        """Power drawn while executing in ``domain``."""
        return {
            CycleDomain.NORMAL_CPU: self.normal_cpu_mw,
            CycleDomain.SECURE_CPU: self.secure_cpu_mw,
            CycleDomain.MONITOR: self.monitor_mw,
            CycleDomain.DMA: self.dma_mw,
            CycleDomain.PERIPHERAL: self.peripheral_mw,
            CycleDomain.IDLE: self.idle_mw,
        }[domain]


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals in millijoules, overall and per domain."""

    total_mj: float
    per_domain_mj: dict[CycleDomain, float]

    def domain_mj(self, domain: CycleDomain) -> float:
        """Energy charged to one domain."""
        return self.per_domain_mj.get(domain, 0.0)


@dataclass
class EnergyMeter:
    """Integrates the power model over clock charges.

    Subscribe once per clock; read with :meth:`report`, or bracket a region
    with :meth:`snapshot` / :meth:`delta_since`.
    """

    clock: SimClock
    power: PowerModel = field(default_factory=PowerModel)
    _energy_mj: dict[CycleDomain, float] = field(default_factory=dict)
    _power_mw: dict[CycleDomain, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # The power table is immutable (frozen dataclass): resolve it once
        # instead of rebuilding the lookup dict on every clock charge —
        # this listener runs on the simulator's hottest path.
        self._power_mw = {d: self.power.power_mw(d) for d in CycleDomain}
        self.clock.subscribe(self._on_charge)

    def _on_charge(self, domain: CycleDomain, cycles: int) -> None:
        seconds = cycles / self.clock.freq_hz
        mj = self._power_mw[domain] * seconds  # mW * s = mJ
        self._energy_mj[domain] = self._energy_mj.get(domain, 0.0) + mj

    def report(self) -> EnergyReport:
        """Cumulative energy since meter creation."""
        return EnergyReport(
            total_mj=sum(self._energy_mj.values()),
            per_domain_mj=dict(self._energy_mj),
        )

    def snapshot(self) -> dict[CycleDomain, float]:
        """Current per-domain totals, for delta measurement."""
        return dict(self._energy_mj)

    def delta_since(self, snapshot: dict[CycleDomain, float]) -> EnergyReport:
        """Energy accumulated since a snapshot."""
        per_domain = {}
        for domain, mj in self._energy_mj.items():
            diff = mj - snapshot.get(domain, 0.0)
            if diff > 0:
                per_domain[domain] = diff
        return EnergyReport(
            total_mj=sum(per_domain.values()), per_domain_mj=per_domain
        )

    def detach(self) -> None:
        """Stop metering (unsubscribe from the clock)."""
        self.clock.unsubscribe(self._on_charge)
