"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.ml.layers import softmax


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy.

    Parameters
    ----------
    logits:
        ``(B, C)`` float scores.
    labels:
        ``(B,)`` int class indices.

    Returns
    -------
    (loss, dlogits):
        Mean loss over the batch and the gradient w.r.t. the logits.
    """
    if logits.ndim != 2 or labels.ndim != 1 or len(logits) != len(labels):
        raise ShapeError(f"cross_entropy got {logits.shape} vs {labels.shape}")
    b = len(labels)
    probs = softmax(logits, axis=-1)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(b), labels] + eps).mean())
    dlogits = probs.copy()
    dlogits[np.arange(b), labels] -= 1.0
    return loss, (dlogits / b).astype(np.float32)
