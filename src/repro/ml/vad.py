"""Energy-based voice activity detection.

The per-utterance pipeline API assumes something told the TA where an
utterance starts and ends; on a real device that is a VAD segmenting the
continuous microphone stream.  This is the classic short-time-energy
detector: frame the signal, threshold normalized energy, bridge short
gaps (hangover), and drop blips.  It runs inside the TA in the
continuous-capture mode (``CMD_PROCESS_STREAM``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import MlError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Segment:
    """One active-speech span, in sample indices."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Samples covered."""
        return self.end - self.start


class EnergyVad:
    """Short-time-energy voice activity detector.

    Parameters
    ----------
    frame_samples:
        Analysis frame length (default 10 ms at 16 kHz).
    threshold:
        Normalized mean-absolute-amplitude above which a frame is active.
    hang_frames:
        Inactive frames bridged when flanked by activity (keeps the
        vocoder's inter-word gaps inside one segment).
    min_frames:
        Minimum active frames for a segment to survive (drops clicks).
    """

    def __init__(
        self,
        frame_samples: int = 160,
        threshold: float = 0.01,
        hang_frames: int = 4,
        min_frames: int = 2,
        slack_samples: int = 0,
        metrics: "MetricsRegistry | None" = None,
    ):
        if frame_samples <= 0:
            raise MlError("frame_samples must be positive")
        if not 0.0 < threshold < 1.0:
            raise MlError("threshold must be in (0, 1)")
        if slack_samples < 0:
            raise MlError("slack_samples must be non-negative")
        self.frame_samples = frame_samples
        self.threshold = threshold
        self.hang_frames = hang_frames
        self.min_frames = min_frames
        self.slack_samples = slack_samples
        self.metrics = metrics

    def frame_activity(self, pcm: np.ndarray) -> np.ndarray:
        """Boolean activity per analysis frame."""
        if pcm.dtype != np.int16:
            raise MlError(f"VAD expects int16 PCM, got {pcm.dtype}")
        n_frames = len(pcm) // self.frame_samples
        if n_frames == 0:
            return np.zeros(0, dtype=bool)
        trimmed = pcm[: n_frames * self.frame_samples].astype(np.float32)
        frames = trimmed.reshape(n_frames, self.frame_samples)
        energy = np.abs(frames).mean(axis=1) / 32768.0
        return energy > self.threshold

    def segment(self, pcm: np.ndarray) -> list[Segment]:
        """Active-speech segments of a PCM buffer."""
        active = self.frame_activity(pcm)
        if not len(active):
            return []
        n = len(active)
        # Hangover: bridge inactive runs of <= hang_frames that are flanked
        # by activity (neither leading silence nor a trailing tail).  Runs
        # are found by run-length encoding instead of a per-frame loop.
        bridged = active.copy()
        gaps = np.diff(np.concatenate(([True], active, [True])).astype(np.int8))
        gap_starts = np.flatnonzero(gaps == -1)
        gap_ends = np.flatnonzero(gaps == 1)
        for s, e in zip(gap_starts, gap_ends):
            if s > 0 and e < n and e - s <= self.hang_frames:
                bridged[s:e] = True
        # Extract runs of activity (>= min_frames), trailing run included.
        runs = np.diff(np.concatenate(([False], bridged, [False])).astype(np.int8))
        starts = np.flatnonzero(runs == 1)
        ends = np.flatnonzero(runs == -1)
        return [
            Segment(int(s) * self.frame_samples, int(e) * self.frame_samples)
            for s, e in zip(starts, ends)
            if e - s >= self.min_frames
        ]

    def extract(self, pcm: np.ndarray) -> list[np.ndarray]:
        """The PCM of each detected segment.

        ``slack_samples`` widens each cut into the surrounding signal so
        frame-quantized boundaries do not clip syllable onsets/tails —
        downstream matched-filter ASR needs the whole first and last word.
        """
        out = []
        for s in self.segment(pcm):
            start = max(0, s.start - self.slack_samples)
            end = min(len(pcm), s.end + self.slack_samples)
            out.append(pcm[start:end])
        if self.metrics is not None:
            self.metrics.inc("ml.vad.runs")
            self.metrics.inc("ml.vad.segments", len(out))
            for seg in out:
                self.metrics.observe("ml.vad.segment_samples", len(seg))
        return out
