"""Synthetic speech: vocoder and ASR.

Substitutes for the pre-trained speech-to-text models the paper would
reuse (Whisper [18], fairseq S2T [23]).  The pair is designed so the
*system* properties that matter are preserved:

* The microphone really carries speech-shaped PCM (the vocoder renders
  each word as a distinct multi-tone syllable), so the capture path moves
  realistic volumes of audio through the driver.
* The TA really recovers text from audio (matched-filter decoding), and
  recovery degrades naturally with acoustic noise.
* Recognition errors are controllable: :class:`NoisyChannel` injects
  substitutions/deletions/insertions at a target word-error rate, which is
  how experiment T6 sweeps classifier robustness against ASR quality.

:func:`word_error_rate` implements the standard Levenshtein WER metric so
the injected and measured rates can be cross-checked.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import MlError
from repro.ml.tokenizer import normalize
from repro.sim.rng import SimRng

SAMPLE_RATE = 16_000
SAMPLES_PER_WORD = 320  # 20 ms syllable
GAP_SAMPLES = 80  # 5 ms inter-word silence
WORD_STRIDE = SAMPLES_PER_WORD + GAP_SAMPLES
_AMPLITUDE = 0.35


def _word_template(word: str) -> np.ndarray:
    """Deterministic multi-tone waveform for one word (float in [-1, 1])."""
    h = int.from_bytes(hashlib.sha256(word.encode()).digest()[:8], "little")
    f1 = 350.0 + (h & 0x3FF)  # 350-1373 Hz
    f2 = 1500.0 + ((h >> 10) & 0x7FF)  # 1500-3547 Hz
    f3 = 4000.0 + ((h >> 21) & 0xFFF)  # 4000-8095 Hz
    phase = ((h >> 33) & 0xFF) / 255.0 * 2 * np.pi
    t = np.arange(SAMPLES_PER_WORD) / SAMPLE_RATE
    wave = (
        np.sin(2 * np.pi * f1 * t + phase)
        + 0.6 * np.sin(2 * np.pi * f2 * t)
        + 0.3 * np.sin(2 * np.pi * f3 * t)
    )
    envelope = np.hanning(SAMPLES_PER_WORD)
    return (wave * envelope / np.abs(wave * envelope).max()).astype(np.float32)


class SpeechVocoder:
    """Renders word sequences to int16 PCM."""

    def __init__(self, vocabulary: list[str]):
        if not vocabulary:
            raise MlError("vocoder needs a non-empty vocabulary")
        self.vocabulary = sorted(set(vocabulary))
        self._templates = {w: _word_template(w) for w in self.vocabulary}

    def render_words(self, words: list[str]) -> np.ndarray:
        """PCM for a word sequence (unknown words raise)."""
        chunks = []
        for word in words:
            if word not in self._templates:
                raise MlError(f"vocoder has no template for {word!r}")
            syllable = (self._templates[word] * _AMPLITUDE * 32767).astype(np.int16)
            chunks.append(syllable)
            chunks.append(np.zeros(GAP_SAMPLES, dtype=np.int16))
        if not chunks:
            return np.zeros(0, dtype=np.int16)
        return np.concatenate(chunks)

    def render(self, text: str) -> np.ndarray:
        """PCM for a sentence (normalized word-by-word)."""
        return self.render_words(normalize(text))

    def duration_samples(self, text: str) -> int:
        """Sample count :meth:`render` will produce for ``text``."""
        return len(normalize(text)) * WORD_STRIDE


class MatchedFilterAsr:
    """Decodes vocoder PCM back to text by matched filtering.

    Each word-stride window is correlated against every template; the
    best-scoring word wins if its normalized correlation clears
    ``silence_threshold`` (windows below it are treated as silence/noise
    and skipped).  Additive noise lowers correlations and produces real
    substitution errors — no artificial error injection needed for the
    acoustic branch.
    """

    def __init__(self, vocoder: SpeechVocoder, silence_threshold: float = 0.25):
        self.vocoder = vocoder
        self.silence_threshold = silence_threshold
        words = vocoder.vocabulary
        mat = np.stack([vocoder._templates[w] for w in words])
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        self._matrix = (mat / norms).astype(np.float32)
        self._words = words

    def _decode_at(self, signal: np.ndarray, offset: int) -> tuple[list[str], float]:
        """Decode assuming words start at ``offset``; returns (words, score).

        All word-stride windows are gathered into one ``(n_windows,
        SAMPLES_PER_WORD)`` block and correlated against every template
        with a single matrix product, instead of one matvec per window.
        """
        n_windows = (len(signal) - SAMPLES_PER_WORD - offset) // WORD_STRIDE + 1
        if len(signal) - offset < SAMPLES_PER_WORD or n_windows <= 0:
            return [], 0.0
        idx = (
            offset
            + np.arange(n_windows)[:, None] * WORD_STRIDE
            + np.arange(SAMPLES_PER_WORD)[None, :]
        )
        windows = signal[idx]
        norms = np.linalg.norm(windows, axis=1)
        live = norms >= 1e-6
        if not live.any():
            return [], 0.0
        normalized = windows[live] / norms[live, None]
        scores = normalized @ self._matrix.T
        best = scores.argmax(axis=1)
        best_scores = scores[np.arange(len(best)), best]
        keep = best_scores >= self.silence_threshold
        out = [self._words[int(b)] for b in best[keep]]
        total = sum(float(s) for s in best_scores[keep])
        return out, float(total)

    def _find_alignment(self, signal: np.ndarray) -> int:
        """Estimate the word-grid offset of an arbitrarily cut segment.

        VAD-cut segments start on analysis-frame boundaries, not on the
        vocoder's word grid, and matched filtering decorrelates within a
        couple of samples (the templates carry components up to 8 kHz).
        Two stages:

        1. *Envelope fold* — the amplitude envelope is periodic at the
           word stride (Hann syllable + silent gap); folding |signal| into
           stride phase and circularly correlating against the known
           envelope finds the offset to within a few samples, globally and
           noise-robustly, O(N + stride²).
        2. *Matched-filter refine* — evaluate the actual decode score at
           the ±20 samples around the envelope estimate and keep the best
           (short segments fold few strides, so the estimate can be a
           dozen samples off).
        """
        if len(signal) < 2 * WORD_STRIDE:
            return 0
        amplitude = np.abs(signal)
        usable = (len(amplitude) // WORD_STRIDE) * WORD_STRIDE
        folded = amplitude[:usable].reshape(-1, WORD_STRIDE).mean(axis=0)
        envelope = np.concatenate(
            [np.hanning(SAMPLES_PER_WORD).astype(np.float32),
             np.zeros(GAP_SAMPLES, dtype=np.float32)]
        )
        # np.roll(folded, -shift) materializes a copy per shift; a doubled
        # buffer makes each rotation a contiguous slice over the same
        # values in the same order, so every dot product is bit-identical
        # to the rolled form while skipping WORD_STRIDE array copies.
        doubled = np.concatenate([folded, folded])
        env_scores = [
            float(np.dot(doubled[shift:shift + WORD_STRIDE], envelope))
            for shift in range(WORD_STRIDE)
        ]
        estimate = int(np.argmax(env_scores))

        def decode_score(offset: int) -> float:
            total = 0.0
            windows = 0
            for start in range(offset, len(signal) - SAMPLES_PER_WORD + 1,
                               WORD_STRIDE):
                if windows >= 4:
                    break
                window = signal[start : start + SAMPLES_PER_WORD]
                norm = np.linalg.norm(window)
                if norm < 1e-6:
                    continue
                total += float((self._matrix @ (window / norm)).max())
                windows += 1
            return total

        candidates = sorted(
            {(estimate + d) % WORD_STRIDE for d in range(-20, 21)}
        )
        return max(candidates, key=decode_score)

    def transcribe(self, pcm: np.ndarray, align: bool = True) -> str:
        """Decode int16 PCM to text.

        ``align=True`` (default) searches for the word-grid offset first,
        making decoding robust to segments cut mid-silence by a VAD; pass
        ``align=False`` for known grid-aligned buffers (slightly cheaper).
        """
        if pcm.dtype != np.int16:
            raise MlError(f"ASR expects int16 PCM, got {pcm.dtype}")
        signal = pcm.astype(np.float32) / 32767.0
        offset = self._find_alignment(signal) if align else 0
        words, _ = self._decode_at(signal, offset)
        return " ".join(words)

    def macs_per_second(self) -> int:
        """Decode cost: one correlation per template per stride."""
        strides_per_second = SAMPLE_RATE // WORD_STRIDE
        return strides_per_second * len(self._words) * SAMPLES_PER_WORD


class NoisyChannel:
    """Injects word errors at a target rate (substitution-heavy mix).

    Per word, with probability ``wer``: substitution 70%, deletion 20%,
    insertion 10% — roughly the error profile of a weak ASR on accented
    speech.  Used by T6 to sweep classifier robustness.
    """

    def __init__(self, rng: SimRng, wer: float, vocabulary: list[str]):
        if not 0.0 <= wer <= 1.0:
            raise MlError(f"wer {wer} out of range")
        self.rng = rng
        self.wer = wer
        self.vocabulary = vocabulary

    def corrupt(self, text: str) -> str:
        """Apply the error channel to a transcript."""
        out: list[str] = []
        for word in normalize(text):
            if self.rng.random() >= self.wer:
                out.append(word)
                continue
            kind = self.rng.random()
            if kind < 0.7:  # substitution
                out.append(self.rng.choice(self.vocabulary))
            elif kind < 0.9:  # deletion
                pass
            else:  # insertion (keep word, add a spurious one)
                out.append(word)
                out.append(self.rng.choice(self.vocabulary))
        return " ".join(out)


def word_error_rate(reference: str, hypothesis: str) -> float:
    """Levenshtein WER between two transcripts."""
    ref = normalize(reference)
    hyp = normalize(hypothesis)
    if not ref:
        return 0.0 if not hyp else 1.0
    # Classic DP edit distance.
    prev = list(range(len(hyp) + 1))
    for i, r in enumerate(ref, start=1):
        cur = [i] + [0] * len(hyp)
        for j, h in enumerate(hyp, start=1):
            cost = 0 if r == h else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev = cur
    return prev[-1] / len(ref)
