"""Training loop.

Deterministic mini-batch training with Adam, per-epoch metrics, and early
stopping on validation accuracy.  Kept deliberately simple — the corpus is
synthetic and small, so a few epochs reach the high-90s accuracy the
filtering experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.dataset import Corpus
from repro.ml.losses import cross_entropy
from repro.ml.metrics import BinaryMetrics
from repro.ml.models import TextClassifier
from repro.ml.optim import Adam
from repro.ml.tokenizer import WordTokenizer
from repro.sim.rng import SimRng


@dataclass
class TrainConfig:
    """Hyperparameters for one training run."""

    epochs: int = 6
    batch_size: int = 32
    lr: float = 2e-3
    early_stop_patience: int = 3
    seed: int = 7


@dataclass
class EpochStats:
    """Loss/accuracy for one epoch."""

    epoch: int
    train_loss: float
    val_accuracy: float


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: list[EpochStats] = field(default_factory=list)
    final_metrics: BinaryMetrics | None = None

    @property
    def best_val_accuracy(self) -> float:
        """Best validation accuracy across epochs."""
        return max((s.val_accuracy for s in self.history), default=0.0)


class Trainer:
    """Trains a :class:`TextClassifier` on a labelled corpus."""

    def __init__(self, model: TextClassifier, tokenizer: WordTokenizer,
                 config: TrainConfig | None = None):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.params(), lr=self.config.lr)

    def _encode(self, corpus: Corpus) -> tuple[np.ndarray, np.ndarray]:
        ids = self.tokenizer.encode_batch(corpus.texts)
        labels = np.array(corpus.labels, dtype=np.int64)
        return ids, labels

    def fit(self, train: Corpus, val: Corpus) -> TrainResult:
        """Run the configured number of epochs with early stopping."""
        rng = SimRng(self.config.seed, "trainer")
        x_train, y_train = self._encode(train)
        x_val, y_val = self._encode(val)
        result = TrainResult()
        best = -1.0
        stale = 0
        for epoch in range(self.config.epochs):
            loss = self._run_epoch(x_train, y_train, rng)
            val_acc = self.evaluate(val).accuracy
            result.history.append(
                EpochStats(epoch=epoch, train_loss=loss, val_accuracy=val_acc)
            )
            if val_acc > best:
                best = val_acc
                stale = 0
            else:
                stale += 1
                if stale >= self.config.early_stop_patience:
                    break
        result.final_metrics = self.evaluate(val)
        return result

    def _run_epoch(self, x: np.ndarray, y: np.ndarray, rng: SimRng) -> float:
        self.model.train_mode(True)
        order = list(range(len(x)))
        rng.shuffle(order)
        order = np.array(order)
        total_loss = 0.0
        batches = 0
        bs = self.config.batch_size
        for start in range(0, len(x), bs):
            idx = order[start : start + bs]
            self.optimizer.zero_grad()
            logits = self.model.forward(x[idx])
            loss, dlogits = cross_entropy(logits, y[idx])
            self.model.backward(dlogits)
            self.optimizer.step()
            total_loss += loss
            batches += 1
        self.model.train_mode(False)
        return total_loss / max(1, batches)

    def evaluate(self, corpus: Corpus, threshold: float = 0.5) -> BinaryMetrics:
        """Binary metrics of the current model on a corpus."""
        ids, labels = self._encode(corpus)
        preds = self.model.predict(ids, threshold=threshold)
        return BinaryMetrics.from_predictions(labels, preds)
