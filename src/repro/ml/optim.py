"""Optimizers."""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Parameter


class Optimizer:
    """Base optimizer bound to a parameter list."""

    def __init__(self, params: list[Parameter]):
        self.params = params

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Sgd(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        """Apply one update."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected update."""
        self._t += 1
        b1t = 1 - self.beta1 ** self._t
        b2t = 1 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * (p.grad * p.grad)
            mhat = m / b1t
            vhat = v / b2t
            p.value -= self.lr * mhat / (np.sqrt(vhat) + self.eps)
