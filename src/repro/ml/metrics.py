"""Classification metrics: accuracy, PRF1, confusion matrix, ROC/AUC."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class BinaryMetrics:
    """Standard binary-classification quality numbers.

    The positive class is 'sensitive'; recall is therefore the privacy
    metric (missed sensitive content leaks) and precision the utility
    metric (false positives drop benign traffic the cloud service needed).
    """

    accuracy: float
    precision: float
    recall: float
    f1: float
    tp: int
    fp: int
    tn: int
    fn: int

    @classmethod
    def from_predictions(
        cls, y_true: np.ndarray, y_pred: np.ndarray
    ) -> "BinaryMetrics":
        """Compute from 0/1 label arrays."""
        y_true = np.asarray(y_true).astype(int)
        y_pred = np.asarray(y_pred).astype(int)
        if y_true.shape != y_pred.shape:
            raise ShapeError(f"{y_true.shape} vs {y_pred.shape}")
        tp = int(((y_true == 1) & (y_pred == 1)).sum())
        fp = int(((y_true == 0) & (y_pred == 1)).sum())
        tn = int(((y_true == 0) & (y_pred == 0)).sum())
        fn = int(((y_true == 1) & (y_pred == 0)).sum())
        total = max(1, tp + fp + tn + fn)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return cls(
            accuracy=(tp + tn) / total,
            precision=precision,
            recall=recall,
            f1=f1,
            tp=tp, fp=fp, tn=tn, fn=fn,
        )


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` count matrix, rows = true class."""
    m = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(np.asarray(y_true).astype(int), np.asarray(y_pred).astype(int)):
        m[t, p] += 1
    return m


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC points (fpr, tpr, thresholds) sweeping the decision threshold."""
    y_true = np.asarray(y_true).astype(int)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores)
    y_sorted = y_true[order]
    pos = max(1, int((y_true == 1).sum()))
    neg = max(1, int((y_true == 0).sum()))
    tpr = np.concatenate([[0.0], np.cumsum(y_sorted == 1) / pos])
    fpr = np.concatenate([[0.0], np.cumsum(y_sorted == 0) / neg])
    thresholds = np.concatenate([[np.inf], scores[order]])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under an ROC curve by trapezoid rule."""
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))
