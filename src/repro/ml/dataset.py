"""Synthetic sensitive-utterance corpus.

Substitutes for the private smart-home audio the paper cannot publish (and
we cannot collect): a template-based generator producing the utterance mix
a voice assistant hears.  *Sensitive* categories cover the classic privacy
taxonomies — health, finance, credentials, identity, location — and the
*benign* categories the commands a smart home legitimately forwards to the
cloud (weather, music, timers, shopping, device control).

The generator is seeded (:class:`~repro.sim.rng.SimRng`), so corpora are
reproducible, and every utterance carries its category so per-category
leak analysis is possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.rng import SimRng


class SensitiveCategory(enum.Enum):
    """Utterance categories; ``sensitive`` is the binary label."""

    HEALTH = "health"
    FINANCE = "finance"
    CREDENTIALS = "credentials"
    PERSONAL_ID = "personal_id"
    LOCATION = "location"
    WEATHER = "weather"
    MUSIC = "music"
    TIMER = "timer"
    SHOPPING = "shopping"
    HOME_CONTROL = "home_control"
    SMALLTALK = "smalltalk"

    @property
    def sensitive(self) -> bool:
        """Binary privacy label of this category."""
        return self in _SENSITIVE


_SENSITIVE = {
    SensitiveCategory.HEALTH,
    SensitiveCategory.FINANCE,
    SensitiveCategory.CREDENTIALS,
    SensitiveCategory.PERSONAL_ID,
    SensitiveCategory.LOCATION,
}

# -- slot fillers -----------------------------------------------------------

_NAMES = ["alice", "bob", "carol", "david", "emma", "frank", "grace", "henry"]
_CONDITIONS = [
    "diabetes", "depression", "asthma", "cancer", "migraine",
    "insomnia", "anxiety", "arthritis",
]
_MEDICATIONS = [
    "insulin", "prozac", "metformin", "lisinopril", "ibuprofen", "xanax",
]
_BANKS = ["first national", "city bank", "union credit", "coastal savings"]
_AMOUNTS = ["two hundred", "five hundred", "one thousand", "three thousand"]
_SERVICES = ["email", "banking app", "router", "work laptop", "cloud drive"]
_PLACES = ["the clinic", "the courthouse", "school", "the office", "the airport"]
_STREETS = ["maple street", "oak avenue", "elm road", "park lane"]
_CITIES = ["springfield", "riverside", "fairview", "greenville"]
_SONGS = ["jazz", "classical music", "rock", "the new album", "my playlist"]
_ITEMS = ["paper towels", "coffee beans", "batteries", "dog food", "olive oil"]
_ROOMS = ["living room", "kitchen", "bedroom", "hallway", "garage"]
_TIMES = ["five minutes", "ten minutes", "half an hour", "one hour"]
_DIGITS = ["four two seven one", "nine eight three five", "one one two six"]

# -- templates: {slot} names refer to the filler lists above ------------------

_TEMPLATES: dict[SensitiveCategory, list[str]] = {
    SensitiveCategory.HEALTH: [
        "remind me to take my {medication} after dinner",
        "my {condition} has been getting worse lately",
        "schedule an appointment about my {condition}",
        "refill the prescription for {medication}",
        "tell doctor {name} my {condition} symptoms came back",
        "what are the side effects of {medication}",
    ],
    SensitiveCategory.FINANCE: [
        "transfer {amount} dollars from {bank} to my checking account",
        "what is the balance of my {bank} account",
        "pay the mortgage of {amount} dollars to {bank}",
        "my credit card from {bank} was declined again",
        "move {amount} dollars into savings before friday",
    ],
    SensitiveCategory.CREDENTIALS: [
        "the password for the {service} is {digits}",
        "remind me my {service} pin is {digits}",
        "change the {service} passcode to {digits}",
        "the wifi password is {digits} {digits}",
        "store my {service} login code {digits}",
    ],
    SensitiveCategory.PERSONAL_ID: [
        "my social security number is {digits} {digits}",
        "the passport number for {name} is {digits}",
        "note that my drivers license expires soon number {digits}",
        "add {name} s birthday and id number {digits} to contacts",
    ],
    SensitiveCategory.LOCATION: [
        "i will be at {place} on {street} tomorrow morning",
        "nobody is home until sunday we are in {city}",
        "the spare key is hidden near the door on {street}",
        "pick up {name} from {place} at noon",
        "we are leaving the house at {street} empty next week",
    ],
    SensitiveCategory.WEATHER: [
        "what is the weather like today",
        "will it rain in {city} tomorrow",
        "how cold is it outside right now",
        "do i need an umbrella this afternoon",
    ],
    SensitiveCategory.MUSIC: [
        "play some {song} in the {room}",
        "turn up the volume a little",
        "skip this song please",
        "put on {song} for dinner",
    ],
    SensitiveCategory.TIMER: [
        "set a timer for {time}",
        "remind me in {time} to check the oven",
        "cancel the {time} timer",
        "how much time is left on the timer",
    ],
    SensitiveCategory.SHOPPING: [
        "add {item} to the shopping list",
        "order more {item} from the store",
        "what is on my shopping list",
        "remove {item} from the list",
    ],
    SensitiveCategory.HOME_CONTROL: [
        "turn off the lights in the {room}",
        "set the thermostat to seventy degrees",
        "lock the front door please",
        "dim the {room} lights to half",
        "is the {room} window open",
    ],
    SensitiveCategory.SMALLTALK: [
        "tell me a joke",
        "what time is it",
        "good morning how are you",
        "thank you that is all",
    ],
}

# Ambiguous templates: the *label* follows the category, but the lexicon
# deliberately overlaps the opposite class — "add insulin to the shopping
# list" is a shopping command wearing health vocabulary, and "schedule the
# appointment" is sensitive with no sensitive keyword in sight.  The
# ``hard_fraction`` knob mixes these in so classifier curves (ROC, T3/T6)
# have a non-degenerate regime.
_HARD_TEMPLATES: dict[SensitiveCategory, list[str]] = {
    # benign categories using sensitive-adjacent words
    SensitiveCategory.SHOPPING: [
        "add {medication} to the shopping list",
        "order more {medication} from the store",
        "add a gift for doctor {name} to the list",
    ],
    SensitiveCategory.HOME_CONTROL: [
        "lock the door before we leave for {place}",
        "turn on the lights near {street}",
    ],
    SensitiveCategory.SMALLTALK: [
        "how do you remember all those numbers",
        "tell me about the bank holiday",
    ],
    SensitiveCategory.TIMER: [
        "remind me before the appointment at {place}",
    ],
    # sensitive categories with bland vocabulary
    SensitiveCategory.HEALTH: [
        "remind me about the thing the doctor said",
        "schedule the appointment we talked about",
    ],
    SensitiveCategory.FINANCE: [
        "how much did we spend at the store this month",
        "move the usual amount before friday",
    ],
    SensitiveCategory.LOCATION: [
        "nobody will be home this weekend",
        "we are leaving early tomorrow morning",
    ],
    SensitiveCategory.CREDENTIALS: [
        "the code is the same as last time",
        "use the number we always use",
    ],
}

# Genuinely ambiguous utterances: the *same text* can be either sensitive
# or benign depending on unobservable context ("the code is the same as
# last time" — a door code, or a discount code?).  In hard mode these are
# emitted under both labels, creating irreducible Bayes error: no
# classifier can reach 100% on them, which is what makes the threshold
# trade-off (T7) a real decision.
_SHARED_AMBIGUOUS: list[tuple[str, SensitiveCategory, SensitiveCategory]] = [
    ("remind me about the appointment tomorrow",
     SensitiveCategory.HEALTH, SensitiveCategory.TIMER),
    ("the code is the same as last time",
     SensitiveCategory.CREDENTIALS, SensitiveCategory.SMALLTALK),
    ("nobody will be home this weekend",
     SensitiveCategory.LOCATION, SensitiveCategory.SMALLTALK),
    ("how much did we spend at the store this month",
     SensitiveCategory.FINANCE, SensitiveCategory.SHOPPING),
    ("pick up the usual from {place} at noon",
     SensitiveCategory.LOCATION, SensitiveCategory.SHOPPING),
    ("send the number to {name} please",
     SensitiveCategory.PERSONAL_ID, SensitiveCategory.SMALLTALK),
    ("we are leaving early tomorrow morning",
     SensitiveCategory.LOCATION, SensitiveCategory.TIMER),
    ("note the thing we discussed yesterday",
     SensitiveCategory.PERSONAL_ID, SensitiveCategory.SMALLTALK),
]

_FILLERS: dict[str, list[str]] = {
    "name": _NAMES,
    "condition": _CONDITIONS,
    "medication": _MEDICATIONS,
    "bank": _BANKS,
    "amount": _AMOUNTS,
    "service": _SERVICES,
    "place": _PLACES,
    "street": _STREETS,
    "city": _CITIES,
    "song": _SONGS,
    "item": _ITEMS,
    "room": _ROOMS,
    "time": _TIMES,
    "digits": _DIGITS,
}


@dataclass(frozen=True)
class Utterance:
    """One labelled utterance.

    ``addressed`` marks whether the speaker was talking *to the assistant*
    (wake word present) or the microphone overheard a side conversation —
    the accidental-activation case behind the paper's motivating leaks.
    """

    text: str
    category: SensitiveCategory
    addressed: bool = True

    @property
    def sensitive(self) -> bool:
        """Binary privacy label."""
        return self.category.sensitive


@dataclass
class Corpus:
    """A labelled utterance collection with a deterministic split."""

    utterances: list[Utterance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.utterances)

    @property
    def texts(self) -> list[str]:
        """All utterance strings."""
        return [u.text for u in self.utterances]

    @property
    def labels(self) -> list[int]:
        """Binary labels (1 = sensitive)."""
        return [int(u.sensitive) for u in self.utterances]

    def split(self, train_fraction: float, rng: SimRng) -> tuple["Corpus", "Corpus"]:
        """Shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        items = list(self.utterances)
        rng.shuffle(items)
        cut = int(len(items) * train_fraction)
        return Corpus(items[:cut]), Corpus(items[cut:])

    def by_category(self) -> dict[SensitiveCategory, int]:
        """Utterance counts per category."""
        out: dict[SensitiveCategory, int] = {}
        for u in self.utterances:
            out[u.category] = out.get(u.category, 0) + 1
        return out


class UtteranceGenerator:
    """Seeded template-based utterance generator."""

    def __init__(self, rng: SimRng):
        self.rng = rng

    def generate_one(
        self, category: SensitiveCategory, hard: bool = False
    ) -> Utterance:
        """One utterance of the given category.

        ``hard=True`` first tries the *shared-ambiguous* pool — texts this
        category emits under its label while the opposite class emits the
        identical text under the other label (irreducible error) — and
        otherwise falls back to the category's lexically-overlapping hard
        templates, then the clean templates.
        """
        pool = _TEMPLATES[category]
        if hard:
            shared = [
                text for text, s, b in _SHARED_AMBIGUOUS
                if category in (s, b)
            ]
            if shared and self.rng.random() < 0.6:
                pool = shared
            elif category in _HARD_TEMPLATES:
                pool = _HARD_TEMPLATES[category]
        template = self.rng.choice(pool)
        text = template
        while "{" in text:
            start = text.index("{")
            end = text.index("}", start)
            slot = text[start + 1 : end]
            filler = self.rng.choice(_FILLERS[slot])
            text = text[:start] + filler + text[end + 1 :]
        return Utterance(text=text, category=category)

    def generate(
        self,
        n: int,
        sensitive_fraction: float = 0.5,
        categories: list[SensitiveCategory] | None = None,
        hard_fraction: float = 0.0,
        addressed_fraction: float = 1.0,
        wake_word: str = "alexa",
    ) -> Corpus:
        """Generate ``n`` utterances with a given sensitive mix.

        ``hard_fraction`` is the probability of drawing each utterance
        from the ambiguous template pool — 0 gives the cleanly separable
        corpus, 0.3 a realistic mixture, 1.0 the adversarial worst case.

        ``addressed_fraction`` is the probability an utterance is spoken
        *to the assistant* (prefixed with ``wake_word``); the remainder
        model overheard side conversations (accidental captures).
        """
        if not 0.0 <= sensitive_fraction <= 1.0:
            raise ValueError("sensitive_fraction must be in [0, 1]")
        if not 0.0 <= hard_fraction <= 1.0:
            raise ValueError("hard_fraction must be in [0, 1]")
        if not 0.0 <= addressed_fraction <= 1.0:
            raise ValueError("addressed_fraction must be in [0, 1]")
        pool = categories or list(SensitiveCategory)
        sensitive_pool = [c for c in pool if c.sensitive]
        benign_pool = [c for c in pool if not c.sensitive]
        if sensitive_fraction > 0 and not sensitive_pool:
            raise ValueError("no sensitive categories in pool")
        if sensitive_fraction < 1 and not benign_pool:
            raise ValueError("no benign categories in pool")
        out = []
        for _ in range(n):
            if self.rng.random() < sensitive_fraction:
                category = self.rng.choice(sensitive_pool)
            else:
                category = self.rng.choice(benign_pool)
            hard = self.rng.random() < hard_fraction
            utterance = self.generate_one(category, hard=hard)
            if self.rng.random() < addressed_fraction:
                utterance = Utterance(
                    text=f"{wake_word} {utterance.text}",
                    category=utterance.category,
                    addressed=True,
                )
            else:
                utterance = Utterance(
                    text=utterance.text,
                    category=utterance.category,
                    addressed=False,
                )
            out.append(utterance)
        return Corpus(out)

    @staticmethod
    def all_template_texts() -> list[str]:
        """Every template with every filler (for vocabulary fitting)."""
        texts = []
        for templates in _TEMPLATES.values():
            texts.extend(templates)
        for templates in _HARD_TEMPLATES.values():
            texts.extend(templates)
        texts.extend(text for text, _, _ in _SHARED_AMBIGUOUS)
        for fillers in _FILLERS.values():
            texts.extend(fillers)
        from repro.core.wakeword import DEFAULT_WAKE_WORDS

        texts.extend(DEFAULT_WAKE_WORDS)
        return texts
