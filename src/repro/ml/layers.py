"""Differentiable layers (numpy, explicit forward/backward).

Conventions
-----------
* Batched inputs; token tensors are int32 ``(B, L)``, activations float32.
* Each layer caches what its backward pass needs during ``forward`` and
  consumes it in ``backward`` — layers are therefore single-use per step
  (standard for define-by-run scratch implementations).
* Parameters are :class:`Parameter` objects; ``layer.params()`` exposes
  them to the optimizer.
* Every layer reports ``macs(...)`` — multiply-accumulate counts the TEE
  cost model uses to charge inference cycles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = value.astype(np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def size_bytes(self) -> int:
        """fp32 storage footprint."""
        return self.value.size * 4

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad[...] = 0.0


def glorot(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in = shape[0] if len(shape) == 1 else int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


class Layer:
    """Base layer interface."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def params(self) -> list[Parameter]:
        """Trainable parameters (default: none)."""
        return []


class Embedding(Layer):
    """Token-id lookup table: ``(B, L)`` int → ``(B, L, D)`` float."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        self.vocab_size = vocab_size
        self.dim = dim
        self.table = Parameter(
            (rng.standard_normal((vocab_size, dim)) * 0.1).astype(np.float32),
            name="embedding",
        )
        self._ids: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ShapeError(f"Embedding expects (B, L), got {x.shape}")
        if x.max(initial=0) >= self.vocab_size or x.min(initial=0) < 0:
            raise ShapeError("token id out of vocabulary range")
        self._ids = x
        return self.table.value[x]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._ids is not None, "backward before forward"
        np.add.at(self.table.grad, self._ids, grad)
        return np.zeros_like(self._ids, dtype=np.float32)  # no grad to ids

    def params(self) -> list[Parameter]:
        return [self.table]

    def macs(self, batch: int, seq_len: int) -> int:
        """Lookups are copies, not MACs."""
        return 0


class Dense(Layer):
    """Affine map on the last axis: ``(..., In)`` → ``(..., Out)``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 name: str = "dense"):
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.w = Parameter(glorot(rng, (in_dim, out_dim)), name=f"{name}.w")
        self.b = Parameter(np.zeros(out_dim, dtype=np.float32), name=f"{name}.b")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_dim:
            raise ShapeError(
                f"Dense({self.in_dim}->{self.out_dim}) got {x.shape}"
            )
        self._x = x
        return x @ self.w.value + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        x2 = self._x.reshape(-1, self.in_dim)
        g2 = grad.reshape(-1, self.out_dim)
        self.w.grad += x2.T @ g2
        self.b.grad += g2.sum(axis=0)
        return grad @ self.w.value.T

    def params(self) -> list[Parameter]:
        return [self.w, self.b]

    def macs(self, positions: int) -> int:
        """MACs for ``positions`` independent applications."""
        return positions * self.in_dim * self.out_dim


class Relu(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward"
        return np.where(self._mask, grad, 0.0).astype(np.float32)


class Conv1d(Layer):
    """1-D convolution over the sequence axis.

    Input ``(B, L, C_in)``, output ``(B, L, C_out)`` with same-length
    zero padding.  Implemented by gathering the k shifted views and
    contracting — clear and fast enough for these model sizes.
    """

    def __init__(self, in_channels: int, out_channels: int, width: int,
                 rng: np.random.Generator, name: str = "conv"):
        if width % 2 == 0:
            raise ShapeError("Conv1d width must be odd for same padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.width = width
        self.w = Parameter(
            glorot(rng, (width, in_channels, out_channels)), name=f"{name}.w"
        )
        self.b = Parameter(np.zeros(out_channels, dtype=np.float32),
                           name=f"{name}.b")
        self._x_padded: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_channels:
            raise ShapeError(
                f"Conv1d({self.in_channels}->{self.out_channels}) got {x.shape}"
            )
        pad = self.width // 2
        xp = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
        self._x_padded = xp
        length = x.shape[1]
        out = np.tensordot(
            self._windows(xp, length), self.w.value, axes=([2, 3], [0, 1])
        )
        return (out + self.b.value).astype(np.float32)

    @staticmethod
    def _windows(xp: np.ndarray, length: int) -> np.ndarray:
        """Sliding windows view: ``(B, L, width, C)``."""
        b, _, c = xp.shape
        width = xp.shape[1] - length + 1
        stride_b, stride_l, stride_c = xp.strides
        return np.lib.stride_tricks.as_strided(
            xp,
            shape=(b, length, width, c),
            strides=(stride_b, stride_l, stride_l, stride_c),
            writeable=False,
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x_padded is not None, "backward before forward"
        xp = self._x_padded
        pad = self.width // 2
        length = grad.shape[1]
        windows = self._windows(xp, length)  # (B, L, W, Cin)
        # dW[w, i, o] = sum_{b,l} x[b, l+w, i] * g[b, l, o]
        self.w.grad += np.tensordot(windows, grad, axes=([0, 1], [0, 1]))
        self.b.grad += grad.sum(axis=(0, 1))
        # dx via full correlation with flipped kernel.
        gp = np.pad(grad, ((0, 0), (pad, pad), (0, 0)))
        gwin = self._windows(gp, length)  # (B, L, W, Cout)
        w_flip = self.w.value[::-1]  # (W, Cin, Cout)
        dx = np.einsum("blwo,wio->bli", gwin, w_flip)
        return dx.astype(np.float32)

    def params(self) -> list[Parameter]:
        return [self.w, self.b]

    def macs(self, positions: int) -> int:
        """MACs for a length-``positions`` sequence."""
        return positions * self.width * self.in_channels * self.out_channels


class GlobalMaxPool(Layer):
    """Max over the sequence axis: ``(B, L, C)`` → ``(B, C)``."""

    def __init__(self) -> None:
        self._argmax: np.ndarray | None = None
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._argmax = x.argmax(axis=1)
        self._shape = x.shape
        return x.max(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._shape is not None
        b, length, c = self._shape
        dx = np.zeros(self._shape, dtype=np.float32)
        bi = np.arange(b)[:, None]
        ci = np.arange(c)[None, :]
        dx[bi, self._argmax, ci] = grad
        return dx


class GlobalMeanPool(Layer):
    """Mean over the sequence axis: ``(B, L, C)`` → ``(B, C)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        b, length, c = self._shape
        return np.broadcast_to(grad[:, None, :] / length, self._shape).astype(
            np.float32
        ).copy()


class LayerNorm(Layer):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = "ln"):
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=np.float32), name=f"{name}.g")
        self.beta = Parameter(np.zeros(dim, dtype=np.float32), name=f"{name}.b")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mu) * inv
        self._cache = (xhat, inv)
        return (xhat * self.gamma.value + self.beta.value).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        xhat, inv = self._cache
        self.gamma.grad += (grad * xhat).reshape(-1, self.dim).sum(axis=0)
        self.beta.grad += grad.reshape(-1, self.dim).sum(axis=0)
        g = grad * self.gamma.value
        n = self.dim
        dx = inv / n * (
            n * g
            - g.sum(axis=-1, keepdims=True)
            - xhat * (g * xhat).sum(axis=-1, keepdims=True)
        )
        return dx.astype(np.float32)

    def params(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class Dropout(Layer):
    """Inverted dropout; identity when ``training`` is False."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ShapeError(f"dropout rate {rate} out of range")
        self.rate = rate
        self.rng = rng
        self.training = True
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return (x * self._mask).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return (grad * self._mask).astype(np.float32)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)
