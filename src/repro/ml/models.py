"""The three classifier architectures from paper Section IV-4.

* :class:`TextCnnClassifier` — "feeding the input data into a convolutional
  layer that learns the relevant features ... fed into a fully connected
  layer that performs a binary classification";
* :class:`TransformerClassifier` — "Transformers can be used to encode the
  initial input data ... via a self-attention mechanism.  The encoded
  representation can then be fed into a binary classification layer";
* :class:`HybridCnnTransformer` — "use the CNN model as a feature extractor
  and the transformer as a classifier".

All three share the :class:`TextClassifier` interface the rest of the
system consumes: batched forward/backward for training, ``predict_proba``
for thresholded filtering, and the deployment accounting the TEE needs —
parameter bytes (does it fit the secure heap?) and MACs per inference
(what does it cost in cycles?).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.ml.attention import TransformerEncoderBlock, sinusoidal_positions
from repro.ml.layers import (
    Conv1d,
    Dense,
    Dropout,
    Embedding,
    GlobalMaxPool,
    GlobalMeanPool,
    Layer,
    Parameter,
    Relu,
    softmax,
)

NUM_CLASSES = 2  # benign / sensitive


class TextClassifier:
    """Interface shared by all classifier architectures."""

    name = "base"

    def __init__(self, vocab_size: int, max_len: int):
        self.vocab_size = vocab_size
        self.max_len = max_len
        self._training = True

    # -- training interface ------------------------------------------------------

    def forward(self, ids: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        """Token ids ``(B, L)`` → logits ``(B, 2)``."""
        raise NotImplementedError

    def backward(self, dlogits: np.ndarray) -> None:  # pragma: no cover - interface
        """Backprop from the logits gradient."""
        raise NotImplementedError

    def params(self) -> list[Parameter]:  # pragma: no cover - interface
        raise NotImplementedError

    def train_mode(self, training: bool) -> None:
        """Toggle dropout etc."""
        self._training = training
        for layer in self._dropout_layers():
            layer.training = training

    def _dropout_layers(self) -> list[Dropout]:
        return []

    # -- inference interface -------------------------------------------------------

    def predict_proba(self, ids: np.ndarray) -> np.ndarray:
        """Probability of the *sensitive* class per example."""
        was_training = self._training
        self.train_mode(False)
        try:
            logits = self.forward(ids)
        finally:
            self.train_mode(was_training)
        return softmax(logits, axis=-1)[:, 1]

    def predict(self, ids: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions at a decision threshold."""
        return (self.predict_proba(ids) >= threshold).astype(np.int64)

    # -- deployment accounting --------------------------------------------------------

    def num_params(self) -> int:
        """Total scalar parameter count."""
        return sum(p.value.size for p in self.params())

    def size_bytes(self) -> int:
        """fp32 weight footprint (what the secure heap must hold)."""
        return sum(p.size_bytes for p in self.params())

    def macs_per_inference(self) -> int:  # pragma: no cover - interface
        """Multiply-accumulates for one max_len sequence."""
        raise NotImplementedError

    def serialize(self) -> bytes:
        """Flat little-endian fp32 dump of all parameters (stable order)."""
        return b"".join(
            p.value.astype("<f4").tobytes() for p in self.params()
        )

    def deserialize(self, blob: bytes) -> None:
        """Load weights from :meth:`serialize` output."""
        expect = self.size_bytes()
        if len(blob) != expect:
            raise ShapeError(
                f"weight blob is {len(blob)} bytes, model needs {expect}"
            )
        offset = 0
        for p in self.params():
            n = p.value.size * 4
            flat = np.frombuffer(blob[offset : offset + n], dtype="<f4")
            p.value = flat.reshape(p.value.shape).astype(np.float32).copy()
            offset += n


class TextCnnClassifier(TextClassifier):
    """Multi-width CNN text classifier (Kim-style).

    Embedding → parallel Conv1d branches (widths 3 and 5) → ReLU →
    global max pool → concat → dropout → dense logits.
    """

    name = "cnn"

    def __init__(
        self,
        vocab_size: int,
        max_len: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        filters: int = 48,
        widths: tuple[int, ...] = (3, 5),
        dropout: float = 0.2,
    ):
        super().__init__(vocab_size, max_len)
        self.embed = Embedding(vocab_size, embed_dim, rng)
        self.branches: list[tuple[Conv1d, Relu, GlobalMaxPool]] = [
            (Conv1d(embed_dim, filters, w, rng, name=f"conv{w}"),
             Relu(), GlobalMaxPool())
            for w in widths
        ]
        self.dropout = Dropout(dropout, rng)
        self.head = Dense(filters * len(widths), NUM_CLASSES, rng, name="head")
        self.filters = filters
        self.widths = widths

    def forward(self, ids: np.ndarray) -> np.ndarray:
        x = self.embed.forward(ids)
        pooled = []
        for conv, relu, pool in self.branches:
            pooled.append(pool.forward(relu.forward(conv.forward(x))))
        features = np.concatenate(pooled, axis=-1)
        return self.head.forward(self.dropout.forward(features))

    def backward(self, dlogits: np.ndarray) -> None:
        dfeat = self.dropout.backward(self.head.backward(dlogits))
        dx_total = None
        for i, (conv, relu, pool) in enumerate(self.branches):
            chunk = dfeat[:, i * self.filters : (i + 1) * self.filters]
            dx = conv.backward(relu.backward(pool.backward(chunk)))
            dx_total = dx if dx_total is None else dx_total + dx
        self.embed.backward(dx_total)

    def params(self) -> list[Parameter]:
        out = self.embed.params()
        for conv, _, _ in self.branches:
            out.extend(conv.params())
        out.extend(self.head.params())
        return out

    def _dropout_layers(self) -> list[Dropout]:
        return [self.dropout]

    def macs_per_inference(self) -> int:
        total = 0
        for conv, _, _ in self.branches:
            total += conv.macs(self.max_len)
        total += self.head.macs(1)
        return total


class TransformerClassifier(TextClassifier):
    """Transformer-encoder text classifier.

    Embedding + sinusoidal positions → N pre-LN encoder blocks → mean
    pool → dense logits.
    """

    name = "transformer"

    def __init__(
        self,
        vocab_size: int,
        max_len: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        heads: int = 4,
        blocks: int = 2,
        ffn_hidden: int = 64,
        dropout: float = 0.1,
    ):
        super().__init__(vocab_size, max_len)
        self.embed = Embedding(vocab_size, embed_dim, rng)
        self.positions = sinusoidal_positions(max_len, embed_dim)
        self.blocks = [
            TransformerEncoderBlock(embed_dim, heads, ffn_hidden, rng,
                                    name=f"block{i}")
            for i in range(blocks)
        ]
        self.dropout = Dropout(dropout, rng)
        self.pool = GlobalMeanPool()
        self.head = Dense(embed_dim, NUM_CLASSES, rng, name="head")

    def forward(self, ids: np.ndarray) -> np.ndarray:
        x = self.embed.forward(ids) + self.positions[: ids.shape[1]]
        x = self.dropout.forward(x)
        for block in self.blocks:
            x = block.forward(x)
        return self.head.forward(self.pool.forward(x))

    def backward(self, dlogits: np.ndarray) -> None:
        dx = self.pool.backward(self.head.backward(dlogits))
        for block in reversed(self.blocks):
            dx = block.backward(dx)
        self.embed.backward(self.dropout.backward(dx))

    def params(self) -> list[Parameter]:
        out = self.embed.params()
        for block in self.blocks:
            out.extend(block.params())
        out.extend(self.head.params())
        return out

    def _dropout_layers(self) -> list[Dropout]:
        return [self.dropout]

    def macs_per_inference(self) -> int:
        total = sum(block.macs(self.max_len) for block in self.blocks)
        total += self.head.macs(1)
        return total


class HybridCnnTransformer(TextClassifier):
    """CNN feature extractor + Transformer classifier (paper's hybrid).

    Embedding → Conv1d + ReLU (local features) → one encoder block
    (global mixing) → mean pool → dense logits.
    """

    name = "hybrid"

    def __init__(
        self,
        vocab_size: int,
        max_len: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        conv_filters: int = 32,
        conv_width: int = 3,
        heads: int = 4,
        ffn_hidden: int = 64,
        dropout: float = 0.1,
    ):
        super().__init__(vocab_size, max_len)
        self.embed = Embedding(vocab_size, embed_dim, rng)
        self.conv = Conv1d(embed_dim, conv_filters, conv_width, rng, name="conv")
        self.relu = Relu()
        self.positions = sinusoidal_positions(max_len, conv_filters)
        self.block = TransformerEncoderBlock(conv_filters, heads, ffn_hidden,
                                             rng, name="block")
        self.dropout = Dropout(dropout, rng)
        self.pool = GlobalMeanPool()
        self.head = Dense(conv_filters, NUM_CLASSES, rng, name="head")

    def forward(self, ids: np.ndarray) -> np.ndarray:
        x = self.embed.forward(ids)
        x = self.relu.forward(self.conv.forward(x))
        x = x + self.positions[: ids.shape[1]]
        x = self.dropout.forward(x)
        x = self.block.forward(x)
        return self.head.forward(self.pool.forward(x))

    def backward(self, dlogits: np.ndarray) -> None:
        dx = self.pool.backward(self.head.backward(dlogits))
        dx = self.block.backward(dx)
        dx = self.dropout.backward(dx)
        dx = self.conv.backward(self.relu.backward(dx))
        self.embed.backward(dx)

    def params(self) -> list[Parameter]:
        return (
            self.embed.params() + self.conv.params()
            + self.block.params() + self.head.params()
        )

    def _dropout_layers(self) -> list[Dropout]:
        return [self.dropout]

    def macs_per_inference(self) -> int:
        return (
            self.conv.macs(self.max_len)
            + self.block.macs(self.max_len)
            + self.head.macs(1)
        )


def build_classifier(
    architecture: str,
    vocab_size: int,
    max_len: int,
    rng: np.random.Generator,
    **kwargs,
) -> TextClassifier:
    """Factory by architecture name (``cnn`` / ``transformer`` / ``hybrid``)."""
    classes: dict[str, type[TextClassifier]] = {
        "cnn": TextCnnClassifier,
        "transformer": TransformerClassifier,
        "hybrid": HybridCnnTransformer,
    }
    if architecture not in classes:
        raise ValueError(
            f"unknown architecture {architecture!r}; pick from {sorted(classes)}"
        )
    return classes[architecture](vocab_size, max_len, rng, **kwargs)
