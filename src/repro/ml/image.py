"""Image classifier for the camera branch.

Paper Section IV-4: "for an image analysis based system, a pre-trained ML
classifier alone will be sufficient."  A compact MLP over the grayscale
frame — tiny enough for the TEE heap, accurate enough on the synthetic
person/empty-room scenes to demonstrate the camera pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.ml.layers import Dense, Parameter, Relu, softmax
from repro.ml.losses import cross_entropy
from repro.ml.optim import Adam
from repro.sim.rng import SimRng


class ImageClassifier:
    """Two-layer MLP: flatten → hidden ReLU → 2 logits."""

    name = "image-mlp"

    def __init__(self, width: int, height: int, rng: np.random.Generator,
                 hidden: int = 32):
        self.width = width
        self.height = height
        self.input_dim = width * height
        self.fc1 = Dense(self.input_dim, hidden, rng, name="img.fc1")
        self.act = Relu()
        self.fc2 = Dense(hidden, 2, rng, name="img.fc2")

    # -- core ------------------------------------------------------------------

    def _flatten(self, frames: np.ndarray) -> np.ndarray:
        if frames.ndim == 2:
            frames = frames[None]
        if frames.shape[1:] != (self.height, self.width):
            raise ShapeError(
                f"expected frames ({self.height}, {self.width}), got "
                f"{frames.shape[1:]}"
            )
        return frames.reshape(len(frames), -1).astype(np.float32) / 255.0

    def forward(self, frames: np.ndarray) -> np.ndarray:
        """Frames ``(B, H, W)`` uint8 → logits ``(B, 2)``."""
        return self.fc2.forward(self.act.forward(self.fc1.forward(
            self._flatten(frames)
        )))

    def backward(self, dlogits: np.ndarray) -> None:
        """Backprop from logits gradient."""
        self.fc1.backward(self.act.backward(self.fc2.backward(dlogits)))

    def params(self) -> list[Parameter]:
        """Trainable parameters."""
        return self.fc1.params() + self.fc2.params()

    # -- convenience training ------------------------------------------------------

    def fit(
        self,
        frames: np.ndarray,
        labels: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 11,
    ) -> list[float]:
        """Train in place; returns per-epoch mean losses."""
        rng = SimRng(seed, "image-trainer")
        optimizer = Adam(self.params(), lr=lr)
        losses = []
        for _ in range(epochs):
            order = list(range(len(frames)))
            rng.shuffle(order)
            order = np.array(order)
            total, batches = 0.0, 0
            for start in range(0, len(frames), batch_size):
                idx = order[start : start + batch_size]
                optimizer.zero_grad()
                logits = self.forward(frames[idx])
                loss, dlogits = cross_entropy(logits, labels[idx])
                self.backward(dlogits)
                optimizer.step()
                total += loss
                batches += 1
            losses.append(total / max(1, batches))
        return losses

    # -- inference + accounting ---------------------------------------------------

    def predict_proba(self, frames: np.ndarray) -> np.ndarray:
        """Probability of the *sensitive* ('person present') class."""
        return softmax(self.forward(frames), axis=-1)[:, 1]

    def predict(self, frames: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions."""
        return (self.predict_proba(frames) >= threshold).astype(np.int64)

    def num_params(self) -> int:
        """Scalar parameter count."""
        return sum(p.value.size for p in self.params())

    def size_bytes(self) -> int:
        """fp32 weight footprint."""
        return sum(p.size_bytes for p in self.params())

    def macs_per_inference(self) -> int:
        """MACs per frame."""
        return self.fc1.macs(1) + self.fc2.macs(1)
