"""From-scratch numpy machine-learning stack.

Substitutes for the pre-trained models the paper would reuse (Whisper /
fairseq S2T for ASR; transformer libraries for classification).  Paper
Section IV-4 enumerates three candidate classifier architectures — CNN,
Transformer, and a hybrid CNN-Transformer — and this package implements
all three, plus everything needed to train, evaluate, quantize and deploy
them into the TEE:

* :mod:`~repro.ml.layers`, :mod:`~repro.ml.attention` — differentiable
  layers with explicit forward/backward,
* :mod:`~repro.ml.models` — the three classifier architectures,
* :mod:`~repro.ml.optim`, :mod:`~repro.ml.losses`, :mod:`~repro.ml.train`
  — training,
* :mod:`~repro.ml.metrics` — accuracy/PRF1/confusion/ROC,
* :mod:`~repro.ml.tokenizer`, :mod:`~repro.ml.dataset` — a synthetic
  sensitive-utterance corpus with category labels,
* :mod:`~repro.ml.quantize` — int8 post-training quantization for the TEE
  memory budget,
* :mod:`~repro.ml.asr` — the toy vocoder + ASR pair with a controllable
  word-error-rate channel,
* :mod:`~repro.ml.image` — a small image classifier for the camera branch.
"""

from repro.ml.dataset import Corpus, SensitiveCategory, UtteranceGenerator
from repro.ml.models import (
    HybridCnnTransformer,
    TextClassifier,
    TextCnnClassifier,
    TransformerClassifier,
)
from repro.ml.quantize import QuantizedClassifier, quantize_classifier
from repro.ml.tokenizer import WordTokenizer
from repro.ml.train import TrainConfig, Trainer

__all__ = [
    "Corpus",
    "HybridCnnTransformer",
    "QuantizedClassifier",
    "SensitiveCategory",
    "TextClassifier",
    "TextCnnClassifier",
    "TrainConfig",
    "Trainer",
    "TransformerClassifier",
    "UtteranceGenerator",
    "WordTokenizer",
    "quantize_classifier",
]
