"""Multi-head self-attention and the Transformer encoder block.

Implements the architecture the paper's Section IV-4 proposes for the
TA-side classifier: "Transformers can be used to encode the initial input
data so as to learn relevant features of the data via a self-attention
mechanism."  Pre-LN encoder blocks (LayerNorm → sublayer → residual),
which train stably without warmup at these scales.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.ml.layers import Dense, Layer, LayerNorm, Parameter, Relu, softmax


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """The 'Attention is all you need' fixed positional encoding."""
    positions = np.arange(length)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    enc = np.zeros((length, dim), dtype=np.float32)
    enc[:, 0::2] = np.sin(positions * div)
    enc[:, 1::2] = np.cos(positions * div[: (dim + 1) // 2][: enc[:, 1::2].shape[1]])
    return enc


class MultiHeadSelfAttention(Layer):
    """Scaled dot-product self-attention with ``H`` heads."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator,
                 name: str = "mha"):
        if dim % heads != 0:
            raise ShapeError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.wq = Dense(dim, dim, rng, name=f"{name}.q")
        self.wk = Dense(dim, dim, rng, name=f"{name}.k")
        self.wv = Dense(dim, dim, rng, name=f"{name}.v")
        self.wo = Dense(dim, dim, rng, name=f"{name}.o")
        self._cache: tuple | None = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        """(B, L, D) → (B, H, L, Dh)."""
        b, length, _ = x.shape
        return x.reshape(b, length, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        """(B, H, L, Dh) → (B, L, D)."""
        b, h, length, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, length, h * hd)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split(self.wq.forward(x))
        k = self._split(self.wk.forward(x))
        v = self._split(self.wv.forward(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale  # (B,H,L,L)
        attn = softmax(scores, axis=-1)
        context = np.matmul(attn, v)  # (B,H,L,Dh)
        self._cache = (q, k, v, attn, scale)
        return self.wo.forward(self._merge(context))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        q, k, v, attn, scale = self._cache
        d_context = self._split(self.wo.backward(grad))
        d_attn = np.matmul(d_context, v.transpose(0, 1, 3, 2))
        dv = np.matmul(attn.transpose(0, 1, 3, 2), d_context)
        # softmax backward: dS = A * (dA - sum(dA * A))
        inner = (d_attn * attn).sum(axis=-1, keepdims=True)
        d_scores = attn * (d_attn - inner) * scale
        dq = np.matmul(d_scores, k)
        dk = np.matmul(d_scores.transpose(0, 1, 3, 2), q)
        dx = (
            self.wq.backward(self._merge(dq))
            + self.wk.backward(self._merge(dk))
            + self.wv.backward(self._merge(dv))
        )
        return dx.astype(np.float32)

    def params(self) -> list[Parameter]:
        return (
            self.wq.params() + self.wk.params() + self.wv.params() + self.wo.params()
        )

    def macs(self, seq_len: int) -> int:
        """MACs for one sequence: projections + two attention matmuls."""
        proj = 4 * seq_len * self.dim * self.dim
        attn = 2 * self.heads * seq_len * seq_len * self.head_dim
        return proj + attn


class FeedForward(Layer):
    """Position-wise two-layer MLP (the Transformer FFN sublayer)."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator,
                 name: str = "ffn"):
        self.dim = dim
        self.hidden = hidden
        self.fc1 = Dense(dim, hidden, rng, name=f"{name}.1")
        self.act = Relu()
        self.fc2 = Dense(hidden, dim, rng, name=f"{name}.2")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2.forward(self.act.forward(self.fc1.forward(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))

    def params(self) -> list[Parameter]:
        return self.fc1.params() + self.fc2.params()

    def macs(self, seq_len: int) -> int:
        """MACs for one sequence."""
        return seq_len * (self.dim * self.hidden + self.hidden * self.dim)


class TransformerEncoderBlock(Layer):
    """Pre-LN encoder block: ``x + MHA(LN(x))`` then ``x + FFN(LN(x))``."""

    def __init__(self, dim: int, heads: int, ffn_hidden: int,
                 rng: np.random.Generator, name: str = "block"):
        self.ln1 = LayerNorm(dim, name=f"{name}.ln1")
        self.mha = MultiHeadSelfAttention(dim, heads, rng, name=f"{name}.mha")
        self.ln2 = LayerNorm(dim, name=f"{name}.ln2")
        self.ffn = FeedForward(dim, ffn_hidden, rng, name=f"{name}.ffn")

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.mha.forward(self.ln1.forward(x))
        x = x + self.ffn.forward(self.ln2.forward(x))
        return x.astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = grad + self.ln2.backward(self.ffn.backward(grad))
        grad = grad + self.ln1.backward(self.mha.backward(grad))
        return grad.astype(np.float32)

    def params(self) -> list[Parameter]:
        return (
            self.ln1.params() + self.mha.params()
            + self.ln2.params() + self.ffn.params()
        )

    def macs(self, seq_len: int) -> int:
        """MACs for one sequence through the block."""
        return self.mha.macs(seq_len) + self.ffn.macs(seq_len)
