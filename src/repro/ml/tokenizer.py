"""Word-level tokenizer.

The TA classifies *text* (ASR transcripts), so a word tokenizer with a
fixed vocabulary is the right substrate: it is what the CNN/Transformer
classifiers consume, and its ``<unk>`` handling is what makes the WER
robustness experiment (T6) meaningful — ASR substitutions map to unknown
or wrong-but-in-vocab tokens exactly as they would in the real system.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import NotFittedError, VocabularyError

PAD = "<pad>"
UNK = "<unk>"
_WORD_RE = re.compile(r"[a-z0-9']+")


def normalize(text: str) -> list[str]:
    """Lowercase and split into word tokens."""
    return _WORD_RE.findall(text.lower())


class WordTokenizer:
    """Fixed-vocabulary word tokenizer with padding/truncation."""

    def __init__(self, max_len: int = 24):
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        self.max_len = max_len
        self._word_to_id: dict[str, int] = {}
        self._id_to_word: list[str] = []

    # -- vocabulary ------------------------------------------------------------

    def fit(self, texts: list[str], max_vocab: int = 4096) -> "WordTokenizer":
        """Build the vocabulary from a corpus (most frequent words kept)."""
        counts: dict[str, int] = {}
        for text in texts:
            for word in normalize(text):
                counts[word] = counts.get(word, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        vocab = [PAD, UNK] + [w for w, _ in ranked[: max_vocab - 2]]
        self._id_to_word = vocab
        self._word_to_id = {w: i for i, w in enumerate(vocab)}
        return self

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return bool(self._word_to_id)

    @property
    def vocab_size(self) -> int:
        """Vocabulary size including PAD/UNK."""
        self._require_fitted()
        return len(self._id_to_word)

    @property
    def pad_id(self) -> int:
        """Id of the padding token."""
        return 0

    @property
    def unk_id(self) -> int:
        """Id of the unknown-word token."""
        return 1

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise NotFittedError("tokenizer has no vocabulary; call fit()")

    # -- encoding ----------------------------------------------------------------

    def token_id(self, word: str) -> int:
        """Id of one word (UNK if out of vocabulary)."""
        self._require_fitted()
        return self._word_to_id.get(word, self.unk_id)

    def word(self, token_id: int) -> str:
        """Word for one id."""
        self._require_fitted()
        if not 0 <= token_id < len(self._id_to_word):
            raise VocabularyError(f"token id {token_id} out of range")
        return self._id_to_word[token_id]

    def encode(self, text: str) -> np.ndarray:
        """Encode one string to a fixed-length int32 id vector."""
        self._require_fitted()
        ids = [self.token_id(w) for w in normalize(text)][: self.max_len]
        ids += [self.pad_id] * (self.max_len - len(ids))
        return np.array(ids, dtype=np.int32)

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Encode a list of strings to ``(B, max_len)``."""
        return np.stack([self.encode(t) for t in texts])

    def decode(self, ids: np.ndarray) -> str:
        """Invert :meth:`encode` (drops padding)."""
        words = [self.word(int(i)) for i in ids if int(i) != self.pad_id]
        return " ".join(words)

    def words(self) -> list[str]:
        """The full vocabulary, id-ordered."""
        self._require_fitted()
        return list(self._id_to_word)
