"""Post-training int8 quantization.

Paper Section V: TEE memory is small, so the mitigation is "smaller ML
models".  Symmetric per-tensor int8 quantization cuts the weight footprint
4× and (per the cost model) speeds up in-TEE inference; experiment T5
measures the accuracy it costs.

The :class:`QuantizedClassifier` stores int8 weights and dequantizes per
forward pass — functionally equivalent to int8 inference with fp32
accumulators, which is what e.g. CMSIS-NN style kernels do, while letting
us reuse the float forward paths.
"""

from __future__ import annotations

import numpy as np

from repro.ml.models import TextClassifier


class QuantizedTensor:
    """One weight tensor in symmetric per-tensor int8."""

    def __init__(self, values: np.ndarray):
        max_abs = float(np.abs(values).max())
        self.scale = max_abs / 127.0 if max_abs > 0 else 1.0
        self.q = np.clip(
            np.round(values / self.scale), -127, 127
        ).astype(np.int8)
        self.shape = values.shape
        self.mean_abs_error = float(
            np.abs(values - self.q.astype(np.float32).reshape(values.shape)
                   * self.scale).mean()
        )

    def dequantize(self) -> np.ndarray:
        """Recover fp32 values (with quantization error)."""
        return (self.q.astype(np.float32) * self.scale).reshape(self.shape)

    @property
    def size_bytes(self) -> int:
        """int8 payload plus the fp32 scale."""
        return self.q.size + 4


class QuantizedClassifier:
    """A :class:`TextClassifier` running on int8 weights.

    Wraps the original model: weights are quantized once, and each
    prediction call installs the dequantized weights before delegating.
    The wrapper *owns* the model afterwards — using the original directly
    would see quantized weights.
    """

    def __init__(self, model: TextClassifier):
        self._model = model
        self._tensors = [QuantizedTensor(p.value) for p in model.params()]
        self._install()
        self.name = f"{model.name}-int8"
        self.max_len = model.max_len
        self.vocab_size = model.vocab_size

    def _install(self) -> None:
        for p, qt in zip(self._model.params(), self._tensors):
            p.value = qt.dequantize()

    # -- inference ------------------------------------------------------------

    def predict_proba(self, ids: np.ndarray) -> np.ndarray:
        """Sensitive-class probability per example."""
        return self._model.predict_proba(ids)

    def predict(self, ids: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions at a threshold."""
        return self._model.predict(ids, threshold=threshold)

    # -- deployment accounting ---------------------------------------------------

    def num_params(self) -> int:
        """Scalar parameter count (unchanged by quantization)."""
        return self._model.num_params()

    def size_bytes(self) -> int:
        """int8 weight footprint."""
        return sum(t.size_bytes for t in self._tensors)

    def macs_per_inference(self) -> int:
        """MAC count (unchanged; the *rate* improves, see CostModel)."""
        return self._model.macs_per_inference()

    def serialize(self) -> bytes:
        """int8 dump: per-tensor scale (fp32) then payload."""
        parts = []
        for t in self._tensors:
            parts.append(np.float32(t.scale).tobytes())
            parts.append(t.q.tobytes())
        return b"".join(parts)

    def quantization_error(self) -> float:
        """Mean absolute weight error introduced by quantization
    (measured against the original fp32 values at quantization time)."""
        return float(np.mean([t.mean_abs_error for t in self._tensors]))


def quantize_classifier(model: TextClassifier) -> QuantizedClassifier:
    """Quantize a trained classifier to int8 (consumes the model)."""
    return QuantizedClassifier(model)
