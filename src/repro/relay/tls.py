"""A TLS-1.3-shaped handshake and record layer (simulation-grade).

The structure mirrors TLS 1.3's one-round-trip flow over a
request/response transport:

1. ``ClientHello``: client ephemeral DH share + nonce.
2. ``ServerHello``: server ephemeral share + nonce + a *finished* MAC
   binding the transcript under a key derived from both the ephemeral
   secret and the server's static (pinned) key — authenticating the
   server against man-in-the-middle.
3. Traffic keys are derived per direction via HKDF; records are AEAD
   framed with explicit sequence numbers (replay/reorder detection).

Crypto strength caveats are in :mod:`repro.crypto`'s docstring; the
*protocol* properties the reproduction measures — confidentiality from
the wire observer, tamper evidence, replay rejection — all hold.

Wire format: JSON with hex-encoded binary fields (legible in the
supplicant's wire log, which is itself part of the evaluation: tests
assert transcripts never appear there in the clear).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

from repro.crypto.aead import StreamAead
from repro.crypto.dh import DhKeyPair
from repro.crypto.kdf import hkdf_expand, hkdf_extract, hmac_sha256
from repro.errors import HandshakeError, RecordError
from repro.sim.rng import SimRng

_PROTOCOL_LABEL = b"repro-tls-v1"


def _derive_keys(shared: bytes, static_pub: bytes,
                 client_nonce: bytes, server_nonce: bytes) -> dict[str, bytes]:
    """Handshake → traffic keys and finished key."""
    transcript = _PROTOCOL_LABEL + client_nonce + server_nonce + static_pub
    prk = hkdf_extract(transcript, shared)
    return {
        "client_traffic": hkdf_expand(prk, b"c traffic", 32),
        "server_traffic": hkdf_expand(prk, b"s traffic", 32),
        "finished": hkdf_expand(prk, b"finished", 32),
    }


def _nonce(seq: int) -> bytes:
    return seq.to_bytes(12, "little")


def _parse_wire(data: bytes) -> dict:
    """Decode one wire message; corruption anywhere becomes RecordError.

    The network is untrusted and may hand back arbitrary bytes — a flipped
    bit must surface as a catchable protocol error, never as a stray
    ``UnicodeDecodeError`` escaping into the caller.
    """
    try:
        msg = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecordError(f"malformed TLS message: {exc}") from exc
    if not isinstance(msg, dict):
        raise RecordError("malformed TLS message: not an object")
    return msg


class TlsServer:
    """Server side: static identity key + per-connection state.

    ``identity_seed`` deterministically generates the static DH identity;
    clients pin :attr:`static_public`.
    """

    def __init__(self, rng: SimRng):
        self._rng = rng
        self._static = DhKeyPair.generate(rng.fork("static").bytes(32))
        self._conn: dict | None = None

    @property
    def static_public(self) -> bytes:
        """The pinned server identity (what a client must know a priori)."""
        return self._static.public_bytes()

    def handle(self, request: bytes) -> bytes:
        """Process one wire message (handshake or record)."""
        msg = _parse_wire(request)
        kind = msg.get("type")
        if kind == "client_hello":
            return self._server_hello(msg)
        if kind == "record":
            return self._record(msg)
        raise RecordError(f"unknown TLS message type {kind!r}")

    def _server_hello(self, msg: dict) -> bytes:
        client_pub = int(msg["public"], 16)
        client_nonce = bytes.fromhex(msg["nonce"])
        ephemeral = DhKeyPair.generate(self._rng.fork(f"eph{msg['nonce']}").bytes(32))
        server_nonce = self._rng.bytes(16)
        # Bind both the ephemeral DH and the static identity.
        shared = ephemeral.shared_secret(client_pub) + self._static.shared_secret(
            client_pub
        )
        keys = _derive_keys(shared, self.static_public, client_nonce, server_nonce)
        finished = hmac_sha256(
            keys["finished"], b"server" + client_nonce + server_nonce
        )
        self._conn = {
            "recv": StreamAead(keys["client_traffic"]),
            "send": StreamAead(keys["server_traffic"]),
            "recv_seq": 0,
            "send_seq": 0,
            "app_handler": self._app_handler,
        }
        return json.dumps(
            {
                "type": "server_hello",
                "public": format(ephemeral.public, "x"),
                "nonce": server_nonce.hex(),
                "finished": finished.hex(),
            }
        ).encode()

    # Application payload handler; the cloud service overrides via set_handler.
    def _app_handler(self, plaintext: bytes) -> bytes:
        return b'{"type":"ack"}'

    def set_handler(self, handler) -> None:
        """Install the application-layer handler (``bytes -> bytes``)."""
        self._app_handler = handler
        if self._conn is not None:
            self._conn["app_handler"] = handler

    def _record(self, msg: dict) -> bytes:
        if self._conn is None:
            raise HandshakeError("record before handshake")
        conn = self._conn
        seq = int(msg["seq"])
        if seq != conn["recv_seq"]:
            raise RecordError(
                f"bad record sequence: got {seq}, want {conn['recv_seq']}"
            )
        sealed = bytes.fromhex(msg["payload"])
        plaintext = conn["recv"].open(_nonce(seq), sealed)
        conn["recv_seq"] += 1
        reply = conn["app_handler"](plaintext)
        out_seq = conn["send_seq"]
        conn["send_seq"] += 1
        sealed_reply = conn["send"].seal(_nonce(out_seq), reply)
        return json.dumps(
            {"type": "record", "seq": out_seq, "payload": sealed_reply.hex()}
        ).encode()


class TlsClient:
    """Client side, bound to a transport callable ``bytes -> bytes``."""

    def __init__(
        self,
        transport,
        pinned_server_public: bytes,
        rng: SimRng,
        metrics: "MetricsRegistry | None" = None,
    ):
        self._transport = transport
        self._pinned = pinned_server_public
        self._rng = rng
        self._metrics = metrics
        self._send: StreamAead | None = None
        self._recv: StreamAead | None = None
        self._send_seq = 0
        self._recv_seq = 0
        self.handshakes = 0
        self.handshake_attempts = 0

    def _count(self, name: str, n: int = 1) -> None:
        """Record a connection-layer metric (no-op without a registry)."""
        if self._metrics is not None:
            self._metrics.inc(name, n)

    @property
    def connected(self) -> bool:
        """True after a successful handshake."""
        return self._send is not None

    def reset(self) -> None:
        """Drop the connection state (broken transport / failed record).

        After a network fault the client cannot trust its sequence numbers
        or traffic keys to still match the server's; the next
        :meth:`handshake` negotiates a fresh connection.  The handshake
        counters are *not* reset — ``handshake_attempts`` keys the
        per-handshake ephemeral RNG fork, so every retry uses fresh
        ephemerals.
        """
        self._send = None
        self._recv = None
        self._send_seq = 0
        self._recv_seq = 0

    def handshake(self) -> None:
        """Run the 1-RTT handshake; verifies the server's finished MAC."""
        # Keyed by *attempts*, not successes: a failed handshake must not
        # reuse its ephemeral on the retry.
        ephemeral = DhKeyPair.generate(
            self._rng.fork(f"hs{self.handshake_attempts}").bytes(32)
        )
        self.handshake_attempts += 1
        client_nonce = self._rng.bytes(16)
        hello = json.dumps(
            {
                "type": "client_hello",
                "public": format(ephemeral.public, "x"),
                "nonce": client_nonce.hex(),
            }
        ).encode()
        reply = _parse_wire(self._transport(hello))
        if reply.get("type") != "server_hello":
            raise HandshakeError(f"unexpected reply {reply.get('type')!r}")
        try:
            server_pub = int(reply["public"], 16)
            server_nonce = bytes.fromhex(reply["nonce"])
        except (KeyError, ValueError) as exc:
            raise HandshakeError(f"malformed server hello: {exc}") from exc
        pinned_pub_int = int.from_bytes(self._pinned, "big")
        shared = ephemeral.shared_secret(server_pub) + ephemeral.shared_secret(
            pinned_pub_int
        )
        keys = _derive_keys(shared, self._pinned, client_nonce, server_nonce)
        expect = hmac_sha256(
            keys["finished"], b"server" + client_nonce + server_nonce
        )
        if expect.hex() != reply["finished"]:
            raise HandshakeError("server finished MAC mismatch (MITM?)")
        self._send = StreamAead(keys["client_traffic"])
        self._recv = StreamAead(keys["server_traffic"])
        self._send_seq = 0
        self._recv_seq = 0
        self.handshakes += 1
        self._count("tls.handshakes")

    def request(self, plaintext: bytes) -> bytes:
        """Send one application message; returns the decrypted reply."""
        if self._send is None or self._recv is None:
            raise HandshakeError("request before handshake")
        seq = self._send_seq
        self._send_seq += 1
        sealed = self._send.seal(_nonce(seq), plaintext)
        wire = json.dumps(
            {"type": "record", "seq": seq, "payload": sealed.hex()}
        ).encode()
        reply = _parse_wire(self._transport(wire))
        if reply.get("type") != "record":
            raise RecordError(f"unexpected reply {reply.get('type')!r}")
        try:
            rseq = int(reply["seq"])
            sealed_reply = bytes.fromhex(reply["payload"])
        except (KeyError, ValueError) as exc:
            raise RecordError(f"malformed record: {exc}") from exc
        if rseq != self._recv_seq:
            raise RecordError(f"bad reply sequence {rseq}, want {self._recv_seq}")
        self._recv_seq += 1
        plaintext = self._recv.open(_nonce(rseq), sealed_reply)
        self._count("tls.records")
        self._count("tls.record_bytes", len(wire))
        return plaintext
