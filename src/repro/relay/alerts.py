"""Alert routing: ship health violations through the secure relay.

``repro health`` evaluating an SLO violation is only useful if someone
hears about it — and the device's one trustworthy channel to the outside
world is the TA's relay (TLS with a pinned key, retries with backoff, a
sealed store-and-forward queue for outages).  So alerts take that exact
path: :func:`route_health_alert` hands the health report to the
audio-filter TA's ``CMD_ALERT`` command, which sends it as an AVS
``System.Alert`` event and, if the cloud is unreachable, seals it into
the same queue as undelivered decisions (tagged ``kind="alert"``) for
the next drain.

Alerts carry operational telemetry only — SLO verdicts, watchdog stalls
and the flight-recorder span window.  No audio and no transcripts, so
routing them through normal-world shared memory into the TA leaks
nothing (the payload is heading for the cloud anyway, and it leaves the
device under TLS).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.core.ta_filter import CMD_ALERT
from repro.errors import TeeError
from repro.optee.client import TeeClient
from repro.optee.params import MemRef, Params

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import IotPlatform
    from repro.obs.health import HealthReport
    from repro.optee.uuid import TaUuid


def build_alert_doc(
    report: "HealthReport", device_id: str = "device-0"
) -> dict[str, Any]:
    """The JSON alert document for one health report.

    When the report identified an offending trace, the alert carries its
    id (plus any burn-rate rows) so the receiver can correlate the alert
    with the device-side spans of the utterance that tripped the SLO.
    """
    doc = {
        "kind": "health_alert",
        "device": device_id,
        "ok": report.ok,
        "rules": [e.to_doc() for e in report.evaluations],
        "stalled": [a.to_doc() for a in report.stalled],
        "flight_recorder": report.flight_dump or "",
    }
    if report.burn_rates:
        doc["burn_rates"] = [b.to_doc() for b in report.burn_rates]
    if report.offending_trace:
        doc["trace_id"] = report.offending_trace
    return doc


def route_health_alert(
    platform: "IotPlatform",
    ta_uuid: "TaUuid",
    report: "HealthReport",
    device_id: str = "device-0",
) -> dict[str, Any]:
    """Deliver a health report through the TA's relay path.

    Opens a fresh client session to the (single-instance) audio-filter
    TA — reaping a panicked instance first, since an alert most often
    fires precisely when the TA has been crashing — writes the alert doc
    into shared memory, and invokes ``CMD_ALERT``.  Returns the TA's
    outcome dict (``status`` of ``"sent"`` or ``"queued"``), or
    ``{"status": "failed", ...}`` if even a restarted TA cannot come up.
    """
    payload = json.dumps(
        build_alert_doc(report, device_id), sort_keys=True
    ).encode()
    platform.tee.reap_panicked(ta_uuid)
    client = TeeClient(platform.machine)
    try:
        session = client.open_session(ta_uuid)
        try:
            shm = client.allocate_shared_memory(len(payload))
            shm.write(payload)
            result = session.invoke(
                CMD_ALERT, Params.of(MemRef(shm, 0, len(payload)))
            )
        finally:
            try:
                session.close()
            except TeeError:
                pass
    except TeeError as exc:
        platform.machine.trace.emit(
            platform.machine.clock.now, "relay.alerts", "alert_failed",
            error=type(exc).__name__,
        )
        return {"status": "failed", "error": type(exc).__name__}
    finally:
        client.close()
    return dict(result)
