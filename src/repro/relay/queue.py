"""Sealed store-and-forward queue for undeliverable relay payloads.

When the cloud stays unreachable after every retry, the TA must not lose
the decision — and must not weaken it either: the payload has already been
filtered, but it is still device data, so it may only leave the TEE sealed.
The queue therefore rides :class:`~repro.optee.storage.SecureStorage`
(REE-FS model): each entry is AEAD-sealed under the hardware unique key
before the supplicant's filesystem ever sees it, and the entry name is
bound as associated data so the normal world cannot reorder blobs
undetected.

Entries are named ``relayq/<seq>`` with a zero-padded sequence number, so
lexicographic order is arrival order and a drain preserves FIFO semantics.
The queue survives TA teardown (the backing storage is persistent) and is
restored on the next instantiation; draining happens opportunistically
after the next successful send.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import CryptoError, RelayError, RelayQueueFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.storage import SecureStorage

_QUEUE_PREFIX = "relayq/"

#: Default backlog bound.  Sized for the longest outage the store should
#: absorb, not for "never reject": an unbounded queue turns a long cloud
#: outage into unbounded sealed-storage growth.
DEFAULT_MAX_DEPTH = 64


class StoreForwardQueue:
    """FIFO of sealed, undelivered payloads in secure storage.

    The entry names are cached in memory so the common case — an empty
    queue consulted after every successful send — costs no supplicant RPC;
    storage is only touched when entries are actually added, read or
    removed.

    The queue is *bounded* at ``max_depth`` entries and fails **closed**:
    a full queue refuses the new enqueue
    (:class:`~repro.errors.RelayQueueFullError`, counted in
    :attr:`rejected`) instead of growing without limit or silently
    evicting an older entry.  Refusing the newest is the deterministic
    choice — every entry already in the queue was committed and accounted
    before the new one existed, so eviction would retroactively lose a
    decision the device already reported as safe.
    """

    def __init__(
        self, storage: "SecureStorage", max_depth: int = DEFAULT_MAX_DEPTH
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self._storage = storage
        self.max_depth = max_depth
        # Restore any entries a previous TA instance left behind, from the
        # storage's secure-side index — no supplicant RPC, so an (always)
        # empty queue costs the clean path nothing.
        self._names: list[str] = sorted(
            name for name in storage.names() if name.startswith(_QUEUE_PREFIX)
        )
        self._seq = (
            int(self._names[-1][len(_QUEUE_PREFIX):]) + 1 if self._names else 0
        )
        self.enqueued = 0
        self.drained = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> list[str]:
        """Entry names, oldest first (copy)."""
        return list(self._names)

    def enqueue(self, payload: str, meta: dict[str, Any] | None = None) -> str:
        """Seal ``payload`` into the queue; returns the entry name.

        ``meta`` is stored alongside and handed back verbatim on drain —
        the dialog id, prior attempt count and (for trace runs) the
        utterance's ``trace_id`` all ride here, so a drained re-send
        keeps the original event's identity.  The key ``"payload"`` is
        reserved for the payload itself.
        """
        if meta and "payload" in meta:
            raise ValueError('meta key "payload" is reserved')
        if len(self._names) >= self.max_depth:
            self.rejected += 1
            raise RelayQueueFullError(depth=len(self._names))
        name = f"{_QUEUE_PREFIX}{self._seq:08d}"
        self._seq += 1
        entry = {"payload": payload, **(meta or {})}
        self._storage.put(name, json.dumps(entry).encode())
        self._names.append(name)
        self.enqueued += 1
        return name

    def drain(self, send: Callable[[str, dict[str, Any]], Any]) -> int:
        """Deliver queued payloads oldest-first through ``send(payload, meta)``.

        ``meta`` is the entry's stored metadata (e.g. the original dialog
        id and prior attempt count) so re-delivery stays idempotent at the
        receiver.  Stops at the first payload that still cannot be
        delivered (the network may have failed again mid-drain);
        everything already delivered is removed from storage.  Returns the
        number delivered.
        """
        delivered = 0
        while self._names:
            name = self._names[0]
            try:
                entry = json.loads(self._storage.get(name).decode())
            except CryptoError:
                # Unsealing failed — a transiently corrupted read (chaos
                # injection / fs flakiness).  Keep the entry and stop the
                # drain: the payload is still at rest and the next drain
                # re-reads it.  Persistent tampering leaves the entry
                # pinned, which the queue-depth SLO surfaces.
                break
            payload = entry.pop("payload")
            try:
                send(payload, entry)
            except RelayError:
                break
            self._storage.delete(name)
            self._names.pop(0)
            delivered += 1
            self.drained += 1
        return delivered
