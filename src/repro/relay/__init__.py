"""The relay module: TLS endpoint + cloud voice-service protocol.

Paper Section IV-5: "this module constitutes a TLS endpoint which
implements an API, e.g., Amazon Alexa voice service (AVS), used to
communicate with the cloud service provider."  The relay lives in the TA
(secure world) and reaches the network through supplicant RPCs, so the
normal world ever only sees TLS records.
"""

from repro.relay.avs import AvsClient, AvsEvent
from repro.relay.relay import RelayModule
from repro.relay.tls import TlsClient, TlsServer

__all__ = ["AvsClient", "AvsEvent", "RelayModule", "TlsClient", "TlsServer"]
