"""The relay module: TLS endpoint + cloud voice-service protocol.

Paper Section IV-5: "this module constitutes a TLS endpoint which
implements an API, e.g., Amazon Alexa voice service (AVS), used to
communicate with the cloud service provider."  The relay lives in the TA
(secure world) and reaches the network through supplicant RPCs, so the
normal world ever only sees TLS records.

The network itself is untrusted: delivery retries with capped exponential
backoff (:class:`~repro.relay.relay.RetryPolicy`), re-handshaking after
faults, and payloads that stay undeliverable spill into the sealed
:class:`~repro.relay.queue.StoreForwardQueue` until the link recovers.
"""

from repro.relay.avs import AvsClient, AvsEvent
from repro.relay.queue import StoreForwardQueue
from repro.relay.relay import RelayModule, RetryPolicy
from repro.relay.tls import TlsClient, TlsServer

__all__ = [
    "AvsClient",
    "AvsEvent",
    "RelayModule",
    "RetryPolicy",
    "StoreForwardQueue",
    "TlsClient",
    "TlsServer",
]
