"""The relay module hosted inside the TA.

Fig. 1 steps 6–7: after filtering, the TA's relay ships the remaining
data to the cloud "via a relay module in the TA", which "leverages an
OP-TEE user space daemon called the TEE supplicant to provide OS-level
services such as network communication".

Concretely: the TLS client state (keys!) lives secure-side; each request
is sealed in the TA, then the ciphertext crosses to the supplicant via
RPC and onto the in-memory network.  Costs charged: handshake (once),
AEAD per byte, NIC per byte.
"""

from __future__ import annotations

from typing import Any

from repro.optee.ta import TaContext
from repro.relay.avs import AvsClient
from repro.relay.tls import TlsClient
from repro.sim.rng import SimRng


class RelayModule:
    """Secure-side relay: TLS + AVS over supplicant networking."""

    def __init__(
        self,
        ctx: TaContext,
        host: str,
        port: int,
        pinned_server_public: bytes,
        rng: SimRng,
    ):
        self._ctx = ctx
        self._host = host
        self._port = port
        self._tls = TlsClient(self._transport, pinned_server_public, rng)
        self._avs = AvsClient(self._tls.request)
        self.bytes_sent = 0

    def _transport(self, payload: bytes) -> bytes:
        """One supplicant-mediated network round trip (ciphertext only)."""
        costs = self._ctx._os.machine.costs
        self._ctx.compute(int(len(payload) * costs.crypto_cycles_per_byte))
        self.bytes_sent += len(payload)
        reply = self._ctx.rpc("net", "send", self._host, self._port, payload)
        self._ctx.compute(int(len(reply) * costs.crypto_cycles_per_byte))
        return bytes(reply)

    def connect(self) -> None:
        """Perform the TLS handshake (idempotent)."""
        if self._tls.connected:
            return
        costs = self._ctx._os.machine.costs
        self._ctx.compute(costs.handshake_cycles)
        self._tls.handshake()
        self._ctx.log("tls_connected")

    def send_transcript(self, transcript: str) -> dict[str, Any]:
        """Ship one (already filtered) transcript to the cloud service."""
        self.connect()
        return self._avs.recognize(transcript)

    def heartbeat(self) -> dict[str, Any]:
        """Send a keep-alive through the secure channel."""
        self.connect()
        return self._avs.heartbeat()
