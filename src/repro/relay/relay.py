"""The relay module hosted inside the TA.

Fig. 1 steps 6–7: after filtering, the TA's relay ships the remaining
data to the cloud "via a relay module in the TA", which "leverages an
OP-TEE user space daemon called the TEE supplicant to provide OS-level
services such as network communication".

Concretely: the TLS client state (keys!) lives secure-side; each request
is sealed in the TA, then the ciphertext crosses to the supplicant via
RPC and onto the in-memory network.  Costs charged: handshake (once per
connection), AEAD per byte, NIC per byte.

The supplicant and the network are untrusted, so delivery can fail at any
point: the relay retries with capped exponential backoff and deterministic
jitter, resetting the TLS connection state between attempts (sequence
numbers and traffic keys cannot be trusted to match the server's after a
fault, so each retry re-handshakes).  When every attempt fails it raises
:class:`~repro.errors.RelayDeliveryError`; the TA catches that and spills
the payload into the sealed store-and-forward queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    CryptoError,
    RelayExhaustedError,
    RelayThrottledError,
    TeeCommunicationError,
)
from repro.optee.ta import TaContext
from repro.relay.avs import AvsClient
from repro.relay.tls import TlsClient
from repro.sim.rng import SimRng


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    The ``attempt``-th retry (0-based) waits
    ``min(cap, base * multiplier**attempt) * (1 + jitter_fraction * u)``
    cycles, with ``u`` drawn from the relay's own RNG fork — reproducible
    for a given seed, yet desynchronized across devices sharing a config.
    """

    max_attempts: int = 4
    backoff_base_cycles: int = 50_000
    backoff_multiplier: float = 2.0
    backoff_cap_cycles: int = 800_000
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def backoff_cycles(self, attempt: int, rng: SimRng) -> int:
        """Cycles to wait after failed attempt number ``attempt``."""
        base = min(
            self.backoff_cap_cycles,
            self.backoff_base_cycles * self.backoff_multiplier ** attempt,
        )
        return int(base * (1.0 + self.jitter_fraction * rng.random()))


class RelayModule:
    """Secure-side relay: TLS + AVS over supplicant networking."""

    def __init__(
        self,
        ctx: TaContext,
        host: str,
        port: int,
        pinned_server_public: bytes,
        rng: SimRng,
        retry_policy: RetryPolicy | None = None,
        device_id: str = "",
    ):
        self._ctx = ctx
        self._host = host
        self._port = port
        self._tls = TlsClient(
            self._transport, pinned_server_public, rng,
            metrics=ctx.metrics,
        )
        self._avs = AvsClient(self._tls.request, device_id=device_id)
        self._backoff_rng = rng.fork("backoff")
        self.policy = retry_policy or RetryPolicy()
        self.bytes_sent = 0
        self.last_attempts = 0
        # Cycle stamp until which the server's last Throttled verdict
        # holds: while the TA's clock is before it, deliveries defer
        # locally (no wire traffic) instead of hammering the cloud.
        self.backpressure_until = 0
        self.stats: dict[str, int] = {
            "sent": 0,
            "failed": 0,
            "retries": 0,
            "rehandshakes": 0,
            "backoff_cycles": 0,
            "throttled": 0,
            "throttle_deferred": 0,
        }

    def _transport(self, payload: bytes) -> bytes:
        """One supplicant-mediated network round trip (ciphertext only)."""
        costs = self._ctx._os.machine.costs
        with self._ctx.span("tls_record", category="stage.secure",
                            bytes=len(payload)):
            self._ctx.compute(int(len(payload) * costs.crypto_cycles_per_byte))
            self.bytes_sent += len(payload)
            reply = self._ctx.rpc(
                "net", "send", self._host, self._port, payload
            )
            self._ctx.compute(int(len(reply) * costs.crypto_cycles_per_byte))
        return bytes(reply)

    def connect(self) -> None:
        """Perform the TLS handshake (idempotent while connected)."""
        if self._tls.connected:
            return
        costs = self._ctx._os.machine.costs
        with self._ctx.span("tls_handshake", category="stage.secure"):
            self._ctx.compute(costs.handshake_cycles)
            if self._tls.handshakes > 0:
                self.stats["rehandshakes"] += 1
                self._ctx.metrics.inc("relay.rehandshakes")
            self._tls.handshake()
        self._ctx.log("tls_connected", handshakes=self._tls.handshakes)

    def _deliver(self, op: Callable[[], dict[str, Any]]) -> dict[str, Any]:
        """Run one AVS operation with retry, backoff and re-handshake.

        Two failure shapes, deliberately typed apart:

        * transient faults (transport/record errors) burn the
          :class:`RetryPolicy` budget and end in
          :class:`~repro.errors.RelayExhaustedError`;
        * a ``Throttled`` admission verdict is *server-directed*
          backpressure — no client-side retries at all.  The verdict's
          ``retryAfterCycles`` hint opens a local backpressure window;
          until it closes, further deliveries defer without any wire
          traffic (:class:`~repro.errors.RelayThrottledError` with
          ``deferred=True``).
        """
        now = self._ctx.now()
        if now < self.backpressure_until:
            self.last_attempts = 0
            self.stats["throttle_deferred"] += 1
            self._ctx.metrics.inc("relay.throttle_deferred")
            raise RelayThrottledError(
                retry_after_cycles=self.backpressure_until - now,
                attempts=0,
                deferred=True,
            )
        last_exc: Exception | None = None
        backoff_spent = 0
        for attempt in range(self.policy.max_attempts):
            try:
                self.connect()
                directive = op()
            except (TeeCommunicationError, CryptoError) as exc:
                last_exc = exc
                # The connection state is suspect after any transport or
                # record failure; force a fresh handshake on the next try.
                self._tls.reset()
                self._ctx.log(
                    "relay_retry",
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                )
                if attempt + 1 < self.policy.max_attempts:
                    self.stats["retries"] += 1
                    self._ctx.metrics.inc("relay.retries")
                    delay = self.policy.backoff_cycles(attempt, self._backoff_rng)
                    self.stats["backoff_cycles"] += delay
                    backoff_spent += delay
                    with self._ctx.span("relay_backoff", category="stage.secure",
                                        attempt=attempt + 1):
                        self._ctx.compute(delay)
                continue
            if directive.get("directive") == "Throttled":
                retry_after = max(1, int(directive.get("retryAfterCycles", 1)))
                self.backpressure_until = self._ctx.now() + retry_after
                self.last_attempts = attempt + 1
                self.stats["throttled"] += 1
                self._ctx.metrics.inc("relay.throttled")
                self._ctx.log(
                    "relay_throttled",
                    retry_after_cycles=retry_after,
                    attempt=attempt + 1,
                )
                raise RelayThrottledError(
                    retry_after_cycles=retry_after, attempts=attempt + 1
                )
            self.last_attempts = attempt + 1
            self.stats["sent"] += 1
            self._ctx.metrics.inc("relay.sent")
            self._ctx.metrics.observe("relay.attempts", attempt + 1)
            return directive
        self.last_attempts = self.policy.max_attempts
        self.stats["failed"] += 1
        self._ctx.metrics.inc("relay.failed")
        self._ctx.log(
            "relay_exhausted",
            attempts=self.policy.max_attempts,
            backoff_cycles=backoff_spent,
        )
        raise RelayExhaustedError(
            f"cloud unreachable: {last_exc}",
            attempts=self.policy.max_attempts,
            backoff_cycles=backoff_spent,
        )

    def allocate_dialog_id(self) -> int:
        """Reserve the id for one logical event (stable across retries)."""
        return self._avs.allocate_dialog_id()

    @property
    def dialog_cursor(self) -> int:
        """The last allocated dialog id (checkpointed by supervised TAs)."""
        return self._avs.dialog_cursor

    def restore_dialog_cursor(self, value: int) -> None:
        """Advance the dialog-id counter after a checkpoint restore."""
        self._avs.restore_dialog_cursor(value)

    def send_transcript(
        self,
        transcript: str,
        dialog_id: int | None = None,
        prior_attempts: int = 0,
        trace_id: str = "",
    ) -> dict[str, Any]:
        """Ship one (already filtered) transcript to the cloud service.

        Retries per :attr:`policy`; raises
        :class:`~repro.errors.RelayDeliveryError` once exhausted.  Delivery
        is at-least-once on the wire, but every attempt of one logical
        event carries the same ``dialog_id`` (pass the stored id and
        ``prior_attempts`` when re-sending a queued payload), so the cloud
        can suppress duplicates when only a reply was lost.  ``trace_id``
        (when non-empty) rides every attempt's event so the cloud record
        correlates with the device-side spans.
        """
        if dialog_id is None:
            dialog_id = self.allocate_dialog_id()
        attempt = {"n": prior_attempts}

        def op() -> dict[str, Any]:
            attempt["n"] += 1
            return self._avs.recognize(
                transcript, dialog_id, attempt["n"], trace_id=trace_id
            )

        return self._deliver(op)

    def send_alert(
        self,
        alert_json: str,
        dialog_id: int | None = None,
        prior_attempts: int = 0,
        trace_id: str = "",
    ) -> dict[str, Any]:
        """Ship a health alert with the same delivery contract as
        :meth:`send_transcript` (retries, stable dialog id, queueable)."""
        if dialog_id is None:
            dialog_id = self.allocate_dialog_id()
        attempt = {"n": prior_attempts}

        def op() -> dict[str, Any]:
            attempt["n"] += 1
            return self._avs.alert(
                alert_json, dialog_id, attempt["n"], trace_id=trace_id
            )

        return self._deliver(op)

    def heartbeat(self) -> dict[str, Any]:
        """Send a keep-alive through the secure channel (with retries)."""
        return self._deliver(self._avs.heartbeat)
