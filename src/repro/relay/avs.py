"""AVS-style application protocol.

A minimal Alexa-Voice-Service-shaped event protocol: the device sends
JSON *events* (``Recognize`` with a transcript, ``Heartbeat``), the cloud
answers with *directives* (``Ack``, ``Response``).  Enough structure for
the cloud service to act as a realistic recorder of what it was sent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import RecordError


@dataclass(frozen=True)
class AvsEvent:
    """One device→cloud event."""

    namespace: str
    name: str
    payload: dict[str, Any]

    def to_bytes(self) -> bytes:
        """JSON wire encoding."""
        return json.dumps(
            {
                "event": {
                    "header": {"namespace": self.namespace, "name": self.name},
                    "payload": self.payload,
                }
            }
        ).encode()

    @classmethod
    def recognize(cls, transcript: str, dialog_id: int) -> "AvsEvent":
        """The speech-recognition event carrying a transcript."""
        return cls(
            namespace="SpeechRecognizer",
            name="Recognize",
            payload={"transcript": transcript, "dialogRequestId": dialog_id},
        )

    @classmethod
    def heartbeat(cls) -> "AvsEvent":
        """Keep-alive event."""
        return cls(namespace="System", name="SynchronizeState", payload={})

    @classmethod
    def from_bytes(cls, data: bytes) -> "AvsEvent":
        """Parse the wire encoding."""
        try:
            doc = json.loads(data.decode())
            header = doc["event"]["header"]
            return cls(
                namespace=header["namespace"],
                name=header["name"],
                payload=doc["event"].get("payload", {}),
            )
        except (KeyError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecordError(f"malformed AVS event: {exc}") from exc


class AvsClient:
    """Device-side AVS protocol over an encrypted request function."""

    def __init__(self, request):
        """``request`` is a ``bytes -> bytes`` secure channel call."""
        self._request = request
        self._dialog_id = 0
        self.events_sent = 0

    def recognize(self, transcript: str) -> dict[str, Any]:
        """Send a transcript; returns the cloud's directive."""
        self._dialog_id += 1
        reply = self._request(
            AvsEvent.recognize(transcript, self._dialog_id).to_bytes()
        )
        self.events_sent += 1
        return self._parse_directive(reply)

    def heartbeat(self) -> dict[str, Any]:
        """Send a keep-alive."""
        reply = self._request(AvsEvent.heartbeat().to_bytes())
        self.events_sent += 1
        return self._parse_directive(reply)

    @staticmethod
    def _parse_directive(reply: bytes) -> dict[str, Any]:
        try:
            return json.loads(reply.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecordError(f"malformed directive: {exc}") from exc
