"""AVS-style application protocol.

A minimal Alexa-Voice-Service-shaped event protocol: the device sends
JSON *events* (``Recognize`` with a transcript, ``Heartbeat``), the cloud
answers with *directives* (``Ack``, ``Response``).  Enough structure for
the cloud service to act as a realistic recorder of what it was sent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import RecordError


@dataclass(frozen=True)
class AvsEvent:
    """One device→cloud event."""

    namespace: str
    name: str
    payload: dict[str, Any]

    def to_bytes(self) -> bytes:
        """JSON wire encoding."""
        return json.dumps(
            {
                "event": {
                    "header": {"namespace": self.namespace, "name": self.name},
                    "payload": self.payload,
                }
            }
        ).encode()

    @classmethod
    def recognize(
        cls,
        transcript: str,
        dialog_id: int,
        attempt: int = 1,
        device_id: str = "",
        trace_id: str = "",
    ) -> "AvsEvent":
        """The speech-recognition event carrying a transcript.

        ``attempt`` counts delivery attempts of the *same* logical event
        (``dialogRequestId`` is stable across retries), letting the cloud
        suppress duplicates when only a reply was lost in transit.  First
        attempts omit the field (the receiver defaults it to 1), keeping
        the clean-path wire bytes identical to a retry-free protocol.

        ``device_id`` names the sending device so a *shared* ingestion
        endpoint can scope duplicate suppression per sender — dialog ids
        are only unique within one device's counter.  Like ``attempt``,
        it is omitted when empty so single-device deployments keep their
        historical wire bytes.

        ``trace_id`` correlates the event with the device-side spans of
        the same utterance (deterministically derived in the TA).  Also
        omitted when empty — trace-off runs keep their wire bytes.
        """
        payload: dict[str, Any] = {
            "transcript": transcript,
            "dialogRequestId": dialog_id,
        }
        if attempt > 1:
            payload["attempt"] = attempt
        if device_id:
            payload["deviceId"] = device_id
        if trace_id:
            payload["traceId"] = trace_id
        return cls(
            namespace="SpeechRecognizer", name="Recognize", payload=payload
        )

    @classmethod
    def heartbeat(cls) -> "AvsEvent":
        """Keep-alive event."""
        return cls(namespace="System", name="SynchronizeState", payload={})

    @classmethod
    def alert(
        cls,
        alert_json: str,
        dialog_id: int,
        attempt: int = 1,
        device_id: str = "",
        trace_id: str = "",
    ) -> "AvsEvent":
        """A device-health alert (SLO violation, flight-recorder dump).

        Same retry/duplicate-suppression contract as :meth:`recognize`:
        ``dialogRequestId`` is stable across re-deliveries, ``attempt``
        counts them, and ``device_id``/``trace_id`` scope and correlate
        the event (each omitted when defaulted so first-attempt
        single-device bytes stay unchanged).
        """
        payload: dict[str, Any] = {
            "alert": alert_json,
            "dialogRequestId": dialog_id,
        }
        if attempt > 1:
            payload["attempt"] = attempt
        if device_id:
            payload["deviceId"] = device_id
        if trace_id:
            payload["traceId"] = trace_id
        return cls(namespace="System", name="Alert", payload=payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "AvsEvent":
        """Parse the wire encoding."""
        try:
            doc = json.loads(data.decode())
            header = doc["event"]["header"]
            return cls(
                namespace=header["namespace"],
                name=header["name"],
                payload=doc["event"].get("payload", {}),
            )
        except (KeyError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecordError(f"malformed AVS event: {exc}") from exc


class AvsClient:
    """Device-side AVS protocol over an encrypted request function."""

    def __init__(self, request, device_id: str = ""):
        """``request`` is a ``bytes -> bytes`` secure channel call.

        ``device_id``, when non-empty, is stamped into every Recognize and
        Alert event so the cloud can scope duplicate suppression per
        sender.
        """
        self._request = request
        self._device_id = device_id
        self._dialog_id = 0
        self.events_sent = 0

    def allocate_dialog_id(self) -> int:
        """Reserve the id for one logical event (stable across retries)."""
        self._dialog_id += 1
        return self._dialog_id

    @property
    def dialog_cursor(self) -> int:
        """The last allocated dialog id (checkpointed for crash recovery)."""
        return self._dialog_id

    def restore_dialog_cursor(self, value: int) -> None:
        """Advance the id counter after a restart (never moves backwards).

        A restarted instance must not re-allocate an id its predecessor
        already spent — the cloud's duplicate suppression would silently
        eat the *new* event.
        """
        self._dialog_id = max(self._dialog_id, int(value))

    def recognize(
        self,
        transcript: str,
        dialog_id: int | None = None,
        attempt: int = 1,
        trace_id: str = "",
    ) -> dict[str, Any]:
        """Send a transcript; returns the cloud's directive."""
        if dialog_id is None:
            dialog_id = self.allocate_dialog_id()
        reply = self._request(
            AvsEvent.recognize(
                transcript, dialog_id, attempt, self._device_id, trace_id
            ).to_bytes()
        )
        self.events_sent += 1
        return self._parse_directive(reply)

    def heartbeat(self) -> dict[str, Any]:
        """Send a keep-alive."""
        reply = self._request(AvsEvent.heartbeat().to_bytes())
        self.events_sent += 1
        return self._parse_directive(reply)

    def alert(
        self,
        alert_json: str,
        dialog_id: int | None = None,
        attempt: int = 1,
        trace_id: str = "",
    ) -> dict[str, Any]:
        """Send a health alert; returns the cloud's directive."""
        if dialog_id is None:
            dialog_id = self.allocate_dialog_id()
        reply = self._request(
            AvsEvent.alert(
                alert_json, dialog_id, attempt, self._device_id, trace_id
            ).to_bytes()
        )
        self.events_sent += 1
        return self._parse_directive(reply)

    @staticmethod
    def _parse_directive(reply: bytes) -> dict[str, Any]:
        try:
            return json.loads(reply.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecordError(f"malformed directive: {exc}") from exc
