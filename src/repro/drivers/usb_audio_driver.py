"""USB audio-class capture driver.

The comparison subject of experiment T8: the same *task* as the I²S
driver (record a chunk of microphone audio), carried by a far heavier
protocol stack — enumeration with descriptor parsing, address/config/
interface management, URB pool bookkeeping, class-request plumbing, stall
recovery, and power states.  Every function is instrumented like the I²S
driver's, so the TCB toolchain can size both and quantify the paper's
"I²S because USB is complex" argument.

LoC figures are calibrated against real USB audio stacks, where
enumeration and URB management dominate: the full driver is ~1.7× the
I²S driver, and crucially its *minimal capture path* still drags in the
whole enumeration machinery.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.drivers.base import Driver, driver_fn
from repro.drivers.hosting import DriverHost
from repro.errors import BusProtocolError, DeviceStateError, DriverError
from repro.peripherals.codec import pcm16_encode
from repro.peripherals.usb import (
    CLEAR_FEATURE,
    DESC_CONFIGURATION,
    DESC_DEVICE,
    DESC_ENDPOINT,
    DESC_INTERFACE,
    GET_DESCRIPTOR,
    ISO_IN_ENDPOINT,
    SET_ADDRESS,
    SET_CONFIGURATION,
    SET_INTERFACE,
    UAC_MUTE_CONTROL,
    UAC_SAMPLE_RATE_CONTROL,
    UAC_SET_CUR,
    UAC_VOLUME_CONTROL,
    SetupPacket,
    UsbBus,
)

_URB_POOL_SIZE = 8

_STALL_BUDGET = 8
"""Consecutive endpoint stalls tolerated inside one ``read_chunk`` before
the driver gives up.  A single stall is routine (recovered via
CLEAR_FEATURE); a pipe that stalls on every retry is dead and retrying
forever would hang the capture loop."""


class UsbAudioDriver(Driver):
    """Instrumented USB audio capture driver."""

    NAME = "usb-audio"

    def __init__(
        self,
        host: DriverHost,
        bus: UsbBus,
        compiled_out: frozenset[str] = frozenset(),
    ):
        super().__init__(host, compiled_out)
        self.bus = bus
        self.state = "unbound"
        self.chunk_frames = 0
        self.device_info: dict = {}
        self.interfaces: list[dict] = []
        self.endpoints: list[dict] = []
        self._urbs: list[dict] = []
        self._buf_addr: int | None = None
        self._buf_bytes = 0
        self._chunks_read = 0
        self._short_reads = 0
        self._missing_frames = 0

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------

    @driver_fn(loc=142, subsystem="enum", entry_point=True)
    def probe(self) -> None:
        """Full enumeration: reset, descriptors, address, configuration."""
        if self.state != "unbound":
            raise DeviceStateError(f"probe in state {self.state!r}")
        self._bus_reset()
        self._read_device_descriptor()
        self._set_address(7)
        self._read_config_descriptor()
        self._parse_interfaces()
        self._validate_config()
        self._set_configuration(1)
        self._parse_audio_controls()
        self._parse_feature_unit()
        self.state = "idle"

    @driver_fn(loc=34, subsystem="enum")
    def _bus_reset(self) -> None:
        self.bus.reset()
        self.host.compute(800)

    @driver_fn(loc=96, subsystem="enum")
    def _read_device_descriptor(self) -> None:
        raw = self.bus.control(
            SetupPacket(0x80, GET_DESCRIPTOR, DESC_DEVICE << 8, 0, 18)
        )
        if len(raw) != 18 or raw[1] != DESC_DEVICE:
            raise BusProtocolError("malformed device descriptor")
        fields = struct.unpack("<BBHBBBBHHHBBBB", raw)
        self.device_info = {
            "usb_version": fields[2],
            "vendor_id": fields[7],
            "product_id": fields[8],
            "num_configurations": fields[13],
        }
        self.host.compute(300)

    @driver_fn(loc=48, subsystem="enum")
    def _set_address(self, address: int) -> None:
        self.bus.control(SetupPacket(0x00, SET_ADDRESS, address, 0, 0))
        self.host.compute(150)

    @driver_fn(loc=128, subsystem="enum")
    def _read_config_descriptor(self) -> None:
        header = self.bus.control(
            SetupPacket(0x80, GET_DESCRIPTOR, DESC_CONFIGURATION << 8, 0, 9)
        )
        if len(header) < 4:
            raise BusProtocolError("config descriptor header truncated")
        (total_length,) = struct.unpack_from("<H", header, 2)
        self._raw_config = self.bus.control(
            SetupPacket(
                0x80, GET_DESCRIPTOR, DESC_CONFIGURATION << 8, 0, total_length
            )
        )
        self.host.compute(400)

    @driver_fn(loc=176, subsystem="enum")
    def _parse_interfaces(self) -> None:
        """Walk the config blob: interface and endpoint descriptors.

        Descriptor parsing is the classic attack surface of USB stacks —
        every structural violation (zero lengths, truncated descriptors)
        must surface as a typed protocol error, never an interpreter
        exception (the fuzz suite enforces this).
        """
        self.interfaces = []
        self.endpoints = []
        blob = self._raw_config
        try:
            offset = blob[0]  # skip config header
            while offset < len(blob):
                length, desc_type = blob[offset], blob[offset + 1]
                if length == 0:
                    raise BusProtocolError("zero-length descriptor")
                if offset + length > len(blob):
                    raise BusProtocolError("descriptor overruns config blob")
                if desc_type == DESC_INTERFACE:
                    num, alt, n_eps, cls, subcls = struct.unpack_from(
                        "<BBBBB", blob, offset + 2
                    )
                    self.interfaces.append(
                        {"number": num, "alt": alt, "endpoints": n_eps,
                         "class": cls, "subclass": subcls}
                    )
                elif desc_type == DESC_ENDPOINT:
                    addr, attrs = blob[offset + 2], blob[offset + 3]
                    (packet,) = struct.unpack_from("<H", blob, offset + 4)
                    self.endpoints.append(
                        {"address": addr, "attributes": attrs,
                         "max_packet": packet}
                    )
                offset += length
        except (IndexError, struct.error) as exc:
            raise BusProtocolError(f"malformed config descriptor: {exc}") from exc
        if not any(i["class"] == 1 for i in self.interfaces):
            raise BusProtocolError("not an audio-class device")
        self.host.compute(600)

    @driver_fn(loc=42, subsystem="enum")
    def _set_configuration(self, value: int) -> None:
        self.bus.control(SetupPacket(0x00, SET_CONFIGURATION, value, 0, 0))
        self.host.compute(150)

    @driver_fn(loc=148, subsystem="enum")
    def _parse_audio_controls(self) -> None:
        self.host.compute(350)

    @driver_fn(loc=74, subsystem="enum")
    def _get_string_descriptor(self, index: int) -> str:
        """Fetch and decode a UTF-16LE string descriptor."""
        from repro.peripherals.usb import DESC_STRING

        raw = self.bus.control(
            SetupPacket(0x80, GET_DESCRIPTOR, (DESC_STRING << 8) | index,
                        0x0409, 255)
        )
        self.host.compute(200)
        return raw[2:].decode("utf-16-le", errors="replace")

    @driver_fn(loc=112, subsystem="enum")
    def _validate_config(self) -> None:
        """Cross-check the parsed topology for spec violations.

        Real stacks are littered with quirk handling for devices whose
        descriptors lie; this models the sanity pass.
        """
        streaming = [i for i in self.interfaces if i["subclass"] == 2]
        if not streaming:
            raise BusProtocolError("audio device without streaming interface")
        operational = [i for i in streaming if i["alt"] == 1]
        if not operational:
            raise BusProtocolError("no operational alternate setting")
        if not any(e["address"] & 0x80 for e in self.endpoints):
            raise BusProtocolError("no IN endpoint for a capture device")
        self.host.compute(450)

    @driver_fn(loc=98, subsystem="enum")
    def _parse_feature_unit(self) -> dict:
        """Parse the audio-control feature unit (mute/volume topology)."""
        self.host.compute(380)
        return {"controls": ["mute", "volume"], "channels": 1}

    @driver_fn(loc=58, subsystem="enum", entry_point=True)
    def remove(self) -> None:
        """Unbind: stop streaming, free pools and buffers."""
        if self.state == "capturing":
            self.trigger_stop()
        if self._urbs:
            self._free_urb_pool()
        if self._buf_addr is not None:
            self.host.free_buffer(self._buf_addr)
            self._buf_addr = None
        self.state = "unbound"

    # ------------------------------------------------------------------
    # class-request control plane
    # ------------------------------------------------------------------

    @driver_fn(loc=78, subsystem="control")
    def _class_request(self, request: int, control: int, data: bytes) -> bytes:
        result = self.bus.control(
            SetupPacket(0x21 if request == UAC_SET_CUR else 0xA1,
                        request, control, 0x0200, len(data), data)
        )
        self.host.compute(120)
        return result

    @driver_fn(loc=38, subsystem="control", entry_point=True)
    def set_sample_rate(self, rate_hz: int) -> None:
        """Negotiate the stream sample rate (UAC SET_CUR)."""
        self._class_request(
            UAC_SET_CUR, UAC_SAMPLE_RATE_CONTROL, struct.pack("<I", rate_hz)
        )

    @driver_fn(loc=27, subsystem="control", entry_point=True)
    def set_mute(self, muted: bool) -> None:
        """Device-side mute control."""
        self._class_request(UAC_SET_CUR, UAC_MUTE_CONTROL, bytes([muted]))

    @driver_fn(loc=31, subsystem="control", entry_point=True)
    def set_volume(self, pct: int) -> None:
        """Device-side volume control (0-100)."""
        if not 0 <= pct <= 100:
            raise DriverError(f"volume {pct}% out of range")
        self._class_request(UAC_SET_CUR, UAC_VOLUME_CONTROL, bytes([pct]))

    @driver_fn(loc=44, subsystem="control", entry_point=True)
    def enumerate_controls(self) -> list[str]:
        """Discoverable audio controls."""
        self.host.compute(180)
        return ["Sample Rate", "Mute", "Volume"]

    @driver_fn(loc=52, subsystem="control", entry_point=True)
    def get_volume_range(self) -> tuple[int, int, int]:
        """(min, max, resolution) of the device volume control."""
        self.host.compute(160)
        return (0, 100, 1)

    # ------------------------------------------------------------------
    # URB management
    # ------------------------------------------------------------------

    @driver_fn(loc=74, subsystem="urb")
    def _alloc_urb_pool(self) -> None:
        self._urbs = [
            {"index": i, "state": "free", "frames": 0}
            for i in range(_URB_POOL_SIZE)
        ]
        self.host.compute(300)

    @driver_fn(loc=28, subsystem="urb")
    def _free_urb_pool(self) -> None:
        self._urbs = []
        self.host.compute(120)

    @driver_fn(loc=98, subsystem="urb")
    def _submit_urb(self, frames: int) -> dict:
        urb = next((u for u in self._urbs if u["state"] == "free"), None)
        if urb is None:
            raise DriverError("URB pool exhausted")
        urb["state"] = "submitted"
        urb["frames"] = frames
        self.host.compute(200)
        return urb

    @driver_fn(loc=122, subsystem="urb")
    def _complete_urb(self, urb: dict) -> np.ndarray:
        samples = self.bus.iso_in(ISO_IN_ENDPOINT, urb["frames"])
        urb["state"] = "complete"
        self.host.compute(urb["frames"] // 2 + 150)
        return samples

    @driver_fn(loc=36, subsystem="urb")
    def _reap_urb(self, urb: dict) -> None:
        urb["state"] = "free"
        urb["frames"] = 0
        self.host.compute(80)

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------

    @driver_fn(loc=87, subsystem="stream", entry_point=True)
    def pcm_open_capture(self, chunk_frames: int) -> None:
        """Open a capture stream: URB pool, buffer, rate negotiation."""
        if self.state != "idle":
            raise DeviceStateError(f"pcm_open_capture in state {self.state!r}")
        if chunk_frames <= 0:
            raise DriverError("chunk_frames must be positive")
        self.chunk_frames = chunk_frames
        self._bandwidth_check()
        self._alloc_urb_pool()
        self._iso_schedule()
        self._buf_addr = self.host.alloc_buffer(chunk_frames * 2)
        self._buf_bytes = chunk_frames * 2
        self.set_sample_rate(16_000)
        self.state = "prepared"

    @driver_fn(loc=84, subsystem="stream")
    def _bandwidth_check(self) -> None:
        """Verify the isochronous bandwidth reservation fits the frame."""
        if not self.endpoints:
            raise DriverError("no endpoints parsed; probe first")
        needed = 16_000 * 2 // 1000  # bytes per 1 ms frame
        granted = max(e["max_packet"] for e in self.endpoints)
        if granted < needed:
            raise DriverError(
                f"insufficient iso bandwidth: {granted} < {needed}"
            )
        self.host.compute(260)

    @driver_fn(loc=94, subsystem="stream")
    def _iso_schedule(self) -> None:
        """Build the (micro)frame schedule for the URB ring."""
        self.host.compute(420)

    @driver_fn(loc=41, subsystem="stream", entry_point=True)
    def trigger_start(self) -> None:
        """Select the streaming alternate setting (bandwidth on)."""
        if self.state != "prepared":
            raise DeviceStateError(f"trigger_start in state {self.state!r}")
        self.bus.control(SetupPacket(0x01, SET_INTERFACE, 1, 1, 0))
        self.state = "capturing"

    @driver_fn(loc=39, subsystem="stream", entry_point=True)
    def trigger_stop(self) -> None:
        """Back to the zero-bandwidth alternate setting."""
        if self.state != "capturing":
            raise DeviceStateError(f"trigger_stop in state {self.state!r}")
        self.bus.control(SetupPacket(0x01, SET_INTERFACE, 0, 1, 0))
        self.state = "prepared"

    @driver_fn(loc=138, subsystem="stream", entry_point=True)
    def read_chunk(self) -> np.ndarray:
        """Capture one chunk via the URB submit/complete/reap cycle."""
        if self.state != "capturing":
            raise DeviceStateError(f"read_chunk in state {self.state!r}")
        if self._buf_addr is None:
            raise DriverError("no capture buffer")
        pcm = np.empty(self.chunk_frames, dtype=np.int16)
        filled = 0
        remaining = self.chunk_frames
        stalls = 0
        per_urb = max(16, self.chunk_frames // _URB_POOL_SIZE)
        while remaining > 0:
            frames = min(per_urb, remaining)
            urb = self._submit_urb(frames)
            try:
                got = self._complete_urb(urb)
            except BusProtocolError:
                self._handle_stall()
                stalls += 1
                if stalls >= _STALL_BUDGET:
                    raise DriverError(
                        f"iso pipe dead: {stalls} consecutive stalls "
                        f"at {filled}/{self.chunk_frames} frames"
                    )
                continue
            finally:
                self._reap_urb(urb)
            stalls = 0
            pcm[filled : filled + len(got)] = got
            filled += len(got)
            remaining -= frames
        self._chunks_read += 1
        if filled < self.chunk_frames:
            self._short_reads += 1
            self._missing_frames += self.chunk_frames - filled
            pcm = pcm[:filled]
        self.host.write_mem(self._buf_addr, pcm16_encode(pcm))
        return pcm

    @driver_fn(loc=33, subsystem="stream", entry_point=True)
    def pcm_close(self) -> None:
        """Close the stream; release URBs and the buffer."""
        if self.state == "capturing":
            self.trigger_stop()
        if self.state != "prepared":
            raise DeviceStateError(f"pcm_close in state {self.state!r}")
        self._free_urb_pool()
        if self._buf_addr is not None:
            self.host.free_buffer(self._buf_addr)
            self._buf_addr = None
        self.state = "idle"

    # ------------------------------------------------------------------
    # error recovery
    # ------------------------------------------------------------------

    @driver_fn(loc=66, subsystem="error")
    def _handle_stall(self) -> None:
        self.clear_halt(ISO_IN_ENDPOINT)
        self.host.compute(250)

    @driver_fn(loc=37, subsystem="error", entry_point=True)
    def clear_halt(self, endpoint: int) -> None:
        """CLEAR_FEATURE(ENDPOINT_HALT) — pipe recovery."""
        self.bus.control(SetupPacket(0x02, CLEAR_FEATURE, 0, endpoint, 0))

    @driver_fn(loc=88, subsystem="error")
    def _recover_pipe(self) -> None:
        self._bus_reset()
        self.host.compute(900)

    # ------------------------------------------------------------------
    # power management
    # ------------------------------------------------------------------

    @driver_fn(loc=84, subsystem="power", entry_point=True)
    def suspend(self) -> None:
        """USB selective suspend."""
        if self.state == "capturing":
            raise DeviceStateError("cannot suspend while streaming")
        self._set_power_state("suspended")
        self.state = "suspended"

    @driver_fn(loc=82, subsystem="power", entry_point=True)
    def resume(self) -> None:
        """Resume signalling + re-select configuration."""
        if self.state != "suspended":
            raise DeviceStateError(f"resume in state {self.state!r}")
        self._set_power_state("active")
        self._set_configuration(1)
        self.state = "idle"

    @driver_fn(loc=32, subsystem="power")
    def _set_power_state(self, state: str) -> None:
        self.host.compute(400)

    @driver_fn(loc=43, subsystem="power")
    def _remote_wakeup(self) -> None:
        self.host.compute(350)

    # ------------------------------------------------------------------
    # debug
    # ------------------------------------------------------------------

    @driver_fn(loc=66, subsystem="debug", entry_point=True)
    def lsusb_info(self) -> dict:
        """lsusb-style identity dump."""
        self.host.compute(200)
        return dict(self.device_info)

    @driver_fn(loc=58, subsystem="debug", entry_point=True)
    def dump_descriptors(self) -> dict:
        """Parsed topology for debugfs."""
        return {
            "interfaces": list(self.interfaces),
            "endpoints": list(self.endpoints),
        }

    @driver_fn(loc=51, subsystem="debug", entry_point=True)
    def selftest(self) -> bool:
        """Enumeration sanity check."""
        self.host.compute(1200)
        return bool(self.device_info) and bool(self.endpoints)

    @driver_fn(loc=24, subsystem="debug", entry_point=True)
    def capture_stats(self) -> dict:
        """Capture-path statistics (same contract as the I²S driver's)."""
        return {
            "chunks": self._chunks_read,
            "short_reads": self._short_reads,
            "missing_frames": self._missing_frames,
        }

    @driver_fn(loc=47, subsystem="debug", entry_point=True)
    def packet_stats(self) -> dict:
        """Iso transfer accounting (xruns, completed URBs)."""
        self.host.compute(90)
        return {
            "iso_transfers": self.bus.iso_transfers,
            "control_transfers": self.bus.control_transfers,
            "urbs_in_pool": len(self._urbs),
        }
