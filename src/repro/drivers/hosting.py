"""Driver hosts: the same driver code, two worlds.

The paper's design hinges on moving a driver between two environments
without rewriting it.  A :class:`DriverHost` supplies everything a driver
needs from its environment:

* buffer allocation (the crucial difference — :class:`KernelDriverHost`
  hands out *non-secure* DRAM the untrusted OS can read, while
  :class:`SecureDriverHost` hands out buffers in the *secure* carveout),
* physical memory and MMIO access in the host's world,
* cycle charging and trace emission,
* the ftrace hookpoint (``on_driver_call``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.drivers.base import DriverFunctionInfo
from repro.tz.machine import TrustZoneMachine
from repro.tz.worlds import World

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.tracer import FunctionTracer
    from repro.optee.pta import PtaContext


class DriverHost(Protocol):
    """Environment services a driver consumes."""

    machine: TrustZoneMachine

    @property
    def world(self) -> World:
        """World this host's buffers and accesses belong to."""
        ...

    def alloc_buffer(self, size: int) -> int: ...

    def free_buffer(self, addr: int) -> None: ...

    def read_mem(self, addr: int, size: int) -> bytes: ...

    def write_mem(self, addr: int, data: bytes) -> None: ...

    def compute(self, cycles: int) -> None: ...

    def on_driver_call(
        self, driver: str, info: DriverFunctionInfo, caller: str | None
    ) -> None: ...


class KernelDriverHost:
    """Hosts a driver inside the untrusted kernel (the baseline).

    I/O buffers come from non-secure DRAM, so raw peripheral data is
    exposed to every normal-world attacker model — the leak the paper sets
    out to close.
    """

    def __init__(self, machine: TrustZoneMachine):
        self.machine = machine
        self.tracer: "FunctionTracer | None" = None

    @property
    def world(self) -> World:
        """Kernel drivers run in the normal world."""
        return World.NORMAL

    def attach_tracer(self, tracer: "FunctionTracer") -> None:
        """Connect the kernel's ftrace-style tracer."""
        self.tracer = tracer

    def alloc_buffer(self, size: int) -> int:
        """DMA-able buffer in *non-secure* DRAM."""
        return self.machine.ns_allocator.alloc(size)

    def free_buffer(self, addr: int) -> None:
        """Release a buffer."""
        self.machine.ns_allocator.free(addr)

    def read_mem(self, addr: int, size: int) -> bytes:
        """Load as the normal world (TZASC applies)."""
        return self.machine.memory.read(addr, size, World.NORMAL)

    def write_mem(self, addr: int, data: bytes) -> None:
        """Store as the normal world (TZASC applies)."""
        self.machine.memory.write(addr, data, World.NORMAL)

    def compute(self, cycles: int) -> None:
        """Charge normal-world CPU work."""
        self.machine.clock.advance(cycles, World.NORMAL.domain)

    def on_driver_call(
        self, driver: str, info: DriverFunctionInfo, caller: str | None
    ) -> None:
        """Bookkeeping + ftrace hook for one driver function call."""
        self.compute(self.machine.costs.driver_call_cycles)
        if self.tracer is not None and self.tracer.active:
            self.tracer.record(driver, info, caller)
        self.machine.trace.emit(
            self.machine.clock.now, "kernel.driver", "call",
            driver=driver, fn=info.name, caller=caller,
        )


class SecureDriverHost:
    """Hosts a (minimized) driver inside OP-TEE, behind a PTA.

    Buffers come from the secure DRAM carveout: "the driver's I/O buffers
    are allocated [in secure memory]; the sensitive data is thus securely
    processed" (paper Section II).  Tracing is also available secure-side
    so conformance runs can compare call behaviour across hosts.
    """

    def __init__(self, pta_ctx: "PtaContext"):
        self._ctx = pta_ctx
        self.machine = pta_ctx.machine
        self.tracer: "FunctionTracer | None" = None

    @property
    def world(self) -> World:
        """Secure-world host."""
        return World.SECURE

    def attach_tracer(self, tracer: "FunctionTracer") -> None:
        """Connect a tracer (used by cross-host conformance checks)."""
        self.tracer = tracer

    def alloc_buffer(self, size: int) -> int:
        """DMA-able buffer in the *secure* carveout."""
        return self._ctx.alloc_secure(size)

    def free_buffer(self, addr: int) -> None:
        """Release a secure buffer."""
        self._ctx.free_secure(addr)

    def read_mem(self, addr: int, size: int) -> bytes:
        """Load as the secure world."""
        return self._ctx.read_phys(addr, size)

    def write_mem(self, addr: int, data: bytes) -> None:
        """Store as the secure world."""
        self._ctx.write_phys(addr, data)

    def compute(self, cycles: int) -> None:
        """Charge secure-world CPU work."""
        self._ctx.compute(cycles)

    def on_driver_call(
        self, driver: str, info: DriverFunctionInfo, caller: str | None
    ) -> None:
        """Bookkeeping + optional tracing for one driver function call."""
        self.compute(self.machine.costs.driver_call_cycles)
        if self.tracer is not None and self.tracer.active:
            self.tracer.record(driver, info, caller)
        self.machine.trace.emit(
            self.machine.clock.now, "optee.driver", "call",
            driver=driver, fn=info.name, caller=caller,
        )
