"""Driver conformance suite.

The safety net behind trace-and-strip: a minimized driver build is only
acceptable if the target task still behaves identically.  This module runs
a host-agnostic functional check of the *capture* task against any
:class:`~repro.drivers.i2s_driver.I2sDriver` build and reports pass/fail
per check, so the TCB experiment (T2) can demonstrate that its reductions
are behaviour-preserving — and the tests can demonstrate that
over-aggressive stripping is caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DriverError, ReproError


@dataclass
class ConformanceReport:
    """Outcome of one conformance run."""

    passed: bool
    checks: dict[str, bool] = field(default_factory=dict)
    failure: str | None = None

    def failed_checks(self) -> list[str]:
        """Names of all failed checks."""
        return [name for name, ok in self.checks.items() if not ok]


def run_capture_conformance(
    driver: I2sDriver,
    chunk_frames: int = 256,
    chunks: int = 2,
) -> ConformanceReport:
    """Exercise the capture task end to end on ``driver``.

    The driver must already be probed (state ``idle``).  The check leaves
    the driver back in ``idle`` on success.
    """
    checks: dict[str, bool] = {}
    try:
        checks["state_idle"] = driver.state == "idle"

        driver.pcm_open_capture(chunk_frames)
        checks["open"] = driver.state == "prepared"

        driver.trigger_start()
        checks["start"] = driver.state == "capturing"

        missing_before = driver._missing_frames
        total = np.concatenate(
            [driver.read_chunk() for _ in range(chunks)]
        )
        checks["chunk_length"] = len(total) == chunk_frames * chunks
        # Short-read contract: a chunk may come back smaller than the
        # period on FIFO underrun, but never silently — every missing
        # frame must be accounted for in the driver's capture stats.
        # (Counters are read directly rather than via capture_stats() so
        # minimized builds that strip the debug subsystem still conform.)
        shortfall = chunk_frames * chunks - len(total)
        accounted = driver._missing_frames - missing_before
        checks["short_reads_accounted"] = shortfall == accounted
        checks["signal_present"] = bool(np.any(total != 0))

        encoded = driver.encode_chunk(total[:chunk_frames])
        checks["encode"] = len(encoded) == chunk_frames * 2

        pointer = driver.pcm_pointer()
        checks["pointer_advances"] = pointer >= chunk_frames * chunks

        driver.trigger_stop()
        driver.pcm_close()
        checks["close"] = driver.state == "idle"
    except ReproError as exc:
        return ConformanceReport(passed=False, checks=checks, failure=repr(exc))

    passed = all(checks.values())
    return ConformanceReport(passed=passed, checks=checks)


def run_mixer_conformance(driver: I2sDriver) -> ConformanceReport:
    """Exercise the mixer controls (record+volume task variant)."""
    checks: dict[str, bool] = {}
    try:
        driver.set_volume(50)
        checks["volume_set"] = driver.get_volume() == 50
        driver.set_mute(True)
        checks["mute_set"] = driver.muted
        driver.set_mute(False)
        driver.set_volume(100)
        checks["restore"] = driver.get_volume() == 100 and not driver.muted
        try:
            driver.set_volume(999)
            checks["range_enforced"] = False
        except DriverError:
            checks["range_enforced"] = True
    except ReproError as exc:
        return ConformanceReport(passed=False, checks=checks, failure=repr(exc))
    return ConformanceReport(passed=all(checks.values()), checks=checks)
