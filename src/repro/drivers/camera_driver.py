"""Camera capture driver (V4L2-flavoured).

Smaller sibling of the I²S driver, covering the paper's image branch and
research plan item 6 (generalizing to more peripherals).  Same framework:
instrumented functions with LoC metadata, host-decided buffer security.
"""

from __future__ import annotations

import numpy as np

from repro.drivers.base import Driver, driver_fn
from repro.drivers.hosting import DriverHost
from repro.errors import DeviceStateError, DriverError
from repro.peripherals.camera import Camera


class CameraDriver(Driver):
    """Instrumented frame-capture driver."""

    NAME = "tegra-vi"

    def __init__(
        self,
        host: DriverHost,
        camera: Camera,
        compiled_out: frozenset[str] = frozenset(),
    ):
        super().__init__(host, compiled_out)
        self.camera = camera
        self.state = "unbound"
        self._buf_addr: int | None = None
        self.exposure = 50
        self.last_frame: np.ndarray | None = None

    @driver_fn(loc=72, subsystem="probe", entry_point=True)
    def probe(self) -> None:
        """Bind: detect the sensor and program default modes."""
        if self.state != "unbound":
            raise DeviceStateError(f"probe in state {self.state!r}")
        self._sensor_detect()
        self._program_defaults()
        self.state = "idle"

    @driver_fn(loc=44, subsystem="probe")
    def _sensor_detect(self) -> None:
        self.host.compute(500)

    @driver_fn(loc=38, subsystem="probe")
    def _program_defaults(self) -> None:
        self.host.compute(300)

    @driver_fn(loc=35, subsystem="probe", entry_point=True)
    def remove(self) -> None:
        """Unbind and release buffers."""
        if self._buf_addr is not None:
            self.host.free_buffer(self._buf_addr)
            self._buf_addr = None
        self.state = "unbound"

    @driver_fn(loc=47, subsystem="stream", entry_point=True)
    def stream_on(self) -> None:
        """Start streaming: allocate the frame buffer."""
        if self.state != "idle":
            raise DeviceStateError(f"stream_on in state {self.state!r}")
        self._buf_addr = self.host.alloc_buffer(self.camera.frame_bytes)
        self.state = "streaming"

    @driver_fn(loc=30, subsystem="stream", entry_point=True)
    def stream_off(self) -> None:
        """Stop streaming and free the frame buffer."""
        if self.state != "streaming":
            raise DeviceStateError(f"stream_off in state {self.state!r}")
        if self._buf_addr is not None:
            self.host.free_buffer(self._buf_addr)
            self._buf_addr = None
        self.state = "idle"

    @driver_fn(loc=69, subsystem="stream", entry_point=True)
    def capture_frame(self) -> np.ndarray:
        """Grab one frame into the I/O buffer and return it."""
        if self.state != "streaming" or self._buf_addr is None:
            raise DeviceStateError(f"capture_frame in state {self.state!r}")
        frame = self.camera.capture_frame()
        frame = self._apply_exposure(frame)
        self.host.write_mem(self._buf_addr, frame.tobytes())
        self.host.compute(frame.size // 4)
        self.last_frame = frame
        return frame

    @driver_fn(loc=58, subsystem="stream", entry_point=True)
    def capture_frames(self, n_frames: int) -> np.ndarray:
        """Grab ``n_frames`` frames as one ``(N, H, W)`` block.

        The sensor is still clocked one frame at a time (pixels are
        identical to ``n_frames`` calls of :meth:`capture_frame`), but
        exposure is applied across the whole block, the per-frame
        bookkeeping charge is issued once for the block, and only the
        final frame lands in the single-frame I/O buffer — the batch
        analogue of a ring buffer whose consumer reads the block.
        """
        if self.state != "streaming" or self._buf_addr is None:
            raise DeviceStateError(f"capture_frames in state {self.state!r}")
        if n_frames <= 0:
            raise DriverError("n_frames must be positive")
        block = np.stack(
            [self.camera.capture_frame() for _ in range(n_frames)]
        )
        block = self._apply_exposure(block)
        self.host.write_mem(self._buf_addr, block[-1].tobytes())
        self.host.compute(block.size // 4)
        self.last_frame = block[-1]
        return block

    @driver_fn(loc=26, subsystem="stream")
    def _apply_exposure(self, frame: np.ndarray) -> np.ndarray:
        if self.exposure == 50:
            return frame
        gain = self.exposure / 50.0
        return np.clip(frame.astype(np.float32) * gain, 0, 255).astype(np.uint8)

    @driver_fn(loc=24, subsystem="controls", entry_point=True)
    def set_exposure(self, value: int) -> None:
        """Set sensor exposure (0-100)."""
        if not 0 <= value <= 100:
            raise DriverError(f"exposure {value} out of range")
        self.exposure = value
        self.host.compute(80)

    @driver_fn(loc=52, subsystem="controls", entry_point=True)
    def enumerate_formats(self) -> list[str]:
        """List supported pixel formats."""
        self.host.compute(120)
        return ["GREY8"]

    @driver_fn(loc=58, subsystem="debug", entry_point=True)
    def selftest(self) -> bool:
        """Sensor pattern self-test."""
        self.host.compute(1500)
        return self.state != "unbound"
