"""The I²S capture driver.

Modelled on the breadth of a real SoC audio stack (the Jetson's APE/ADMAIF
I²S path): alongside the dozen functions a plain capture actually
exercises, the driver carries clocking, power management, pin muxing, a
playback (TX) path, full-duplex plumbing, mixer controls and debug
facilities.  That breadth is the point — the paper's research plan item 2
observes that "just part of a large driver code base could be used by a
target protocol", and experiment T2 measures exactly how much of this
driver a given task needs.

Every function is declared with ``@driver_fn(loc=..., subsystem=...)``;
the ``loc`` figures approximate the source footprint each function would
contribute to a ported OP-TEE image.

The driver is host-agnostic: give it a :class:`KernelDriverHost` and it is
the insecure baseline; give it a :class:`SecureDriverHost` and it is the
paper's ported secure driver.  All controller access goes through MMIO
loads/stores in the *host's* world, so porting changes the security
semantics without changing driver logic.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.drivers.base import Driver, driver_fn
from repro.drivers.hosting import DriverHost
from repro.errors import DeviceStateError, DriverError
from repro.peripherals.codec import mulaw_encode, pcm16_encode
from repro.peripherals.dma import DmaEngine
from repro.peripherals.i2s import CtrlBits, I2sController, I2sReg, StatusBits
from repro.tz.memory import MemoryRegion


class I2sDriver(Driver):
    """Instrumented I²S capture/playback driver."""

    NAME = "tegra-i2s"

    def __init__(
        self,
        host: DriverHost,
        controller: I2sController,
        mmio_region: MemoryRegion,
        compiled_out: frozenset[str] = frozenset(),
    ):
        super().__init__(host, compiled_out)
        self.controller = controller  # used only for capture pacing
        self.reg_base = mmio_region.base
        self.state = "unbound"
        self.chunk_frames = 0
        self._buf_addr: int | None = None
        self._buf_bytes = 0
        self.volume_pct = 100
        self.muted = False
        self._clocks_on = False
        self._powered = False
        self._regmap_ready = False
        self._pinmux_done = False
        self.capture_mode = "pio"
        self._dma: DmaEngine | None = None
        self._dma_staging_addr: int | None = None
        self._dma_staging_words = 0
        self._chunks_read = 0
        self._short_reads = 0
        self._missing_frames = 0

    # ------------------------------------------------------------------
    # register helpers
    # ------------------------------------------------------------------

    @driver_fn(loc=14, subsystem="regmap")
    def _reg_read(self, reg: I2sReg) -> int:
        value = self.host.read_mem(self.reg_base + int(reg), 4)
        return struct.unpack("<I", value)[0]

    @driver_fn(loc=12, subsystem="regmap")
    def _reg_write(self, reg: I2sReg, value: int) -> None:
        self.host.write_mem(self.reg_base + int(reg), struct.pack("<I", value))

    @driver_fn(loc=20, subsystem="regmap")
    def _fifo_window_read(self, n_words: int) -> np.ndarray:
        """Pop ``n_words`` FIFO words in one burst bus transaction.

        The memory system charges the window read like any other sized
        transaction (one base cost plus per-line streaming); the
        controller-side per-word pop cost is charged explicitly through
        :meth:`CostModel.fifo_burst_cycles` — this is the recalibrated
        PIO cost attribution for the block-based capture path.
        """
        raw = self.host.read_mem(self.reg_base + int(I2sReg.FIFO), n_words * 4)
        self.host.compute(self.host.machine.costs.fifo_burst_cycles(n_words))
        return np.frombuffer(raw, dtype="<u4")

    @driver_fn(loc=22, subsystem="regmap")
    def _regmap_init(self) -> None:
        self._regmap_ready = True
        self.host.compute(120)

    # ------------------------------------------------------------------
    # probe / device-tree / topology
    # ------------------------------------------------------------------

    @driver_fn(loc=96, subsystem="probe", entry_point=True)
    def probe(self) -> None:
        """Bind the driver: parse DT, init regmap, clocks and power."""
        if self.state != "unbound":
            raise DeviceStateError(f"probe in state {self.state!r}")
        self._parse_device_tree()
        self._regmap_init()
        self._pm_runtime_get()
        self._clk_enable()
        self._pinmux_apply()
        self.state = "idle"

    @driver_fn(loc=64, subsystem="probe")
    def _parse_device_tree(self) -> None:
        self.host.compute(400)

    @driver_fn(loc=48, subsystem="probe", entry_point=True)
    def remove(self) -> None:
        """Unbind: quiesce hardware and release resources."""
        if self.state == "capturing":
            self.trigger_stop()
        if self._buf_addr is not None:
            self._release_dma_buffer()
        if self._dma_staging_addr is not None:
            self._dma_teardown()
        self._clk_disable()
        self._pm_runtime_put()
        self.state = "unbound"

    # ------------------------------------------------------------------
    # clock tree
    # ------------------------------------------------------------------

    @driver_fn(loc=40, subsystem="clock")
    def _clk_enable(self) -> None:
        self._pll_configure()
        self._mclk_set_parent()
        self._clocks_on = True
        self.host.compute(600)

    @driver_fn(loc=28, subsystem="clock")
    def _clk_disable(self) -> None:
        self._clocks_on = False
        self.host.compute(200)

    @driver_fn(loc=74, subsystem="clock")
    def _pll_configure(self) -> None:
        self.host.compute(900)

    @driver_fn(loc=33, subsystem="clock")
    def _mclk_set_parent(self) -> None:
        self.host.compute(150)

    @driver_fn(loc=51, subsystem="clock")
    def clk_set_rate(self, rate_hz: int) -> None:
        """Retune the bit clock for a new sample rate."""
        if rate_hz <= 0:
            raise DriverError(f"bad clock rate {rate_hz}")
        if not self._clocks_on:
            raise DeviceStateError("clocks are off")
        self._pll_configure()
        self.host.compute(300)

    # ------------------------------------------------------------------
    # power management
    # ------------------------------------------------------------------

    @driver_fn(loc=36, subsystem="power")
    def _pm_runtime_get(self) -> None:
        self._powered = True
        self.host.compute(250)

    @driver_fn(loc=30, subsystem="power")
    def _pm_runtime_put(self) -> None:
        self._powered = False
        self.host.compute(180)

    @driver_fn(loc=58, subsystem="power", entry_point=True)
    def suspend(self) -> None:
        """System suspend: save context, gate clocks."""
        if self.state == "capturing":
            raise DeviceStateError("cannot suspend while capturing")
        self._save_context()
        self._clk_disable()
        self.state = "suspended"

    @driver_fn(loc=62, subsystem="power", entry_point=True)
    def resume(self) -> None:
        """System resume: ungate clocks, restore context."""
        if self.state != "suspended":
            raise DeviceStateError(f"resume in state {self.state!r}")
        self._clk_enable()
        self._restore_context()
        self.state = "idle"

    @driver_fn(loc=44, subsystem="power")
    def _save_context(self) -> None:
        self.host.compute(300)

    @driver_fn(loc=47, subsystem="power")
    def _restore_context(self) -> None:
        self.host.compute(320)

    # ------------------------------------------------------------------
    # pinmux
    # ------------------------------------------------------------------

    @driver_fn(loc=39, subsystem="pinmux")
    def _pinmux_apply(self) -> None:
        self._pinmux_done = True
        self.host.compute(180)

    @driver_fn(loc=25, subsystem="pinmux")
    def pinmux_sleep_state(self) -> None:
        """Park the pins for low power (unused by plain capture)."""
        self.host.compute(120)

    # ------------------------------------------------------------------
    # PCM capture stream
    # ------------------------------------------------------------------

    @driver_fn(loc=52, subsystem="pcm", entry_point=True)
    def pcm_open_capture(self, chunk_frames: int) -> None:
        """Open a capture stream with a given period size."""
        if self.state != "idle":
            raise DeviceStateError(f"pcm_open_capture in state {self.state!r}")
        if chunk_frames <= 0:
            raise DriverError("chunk_frames must be positive")
        self.chunk_frames = chunk_frames
        self._hw_params()
        self._alloc_dma_buffer(chunk_frames * 2)  # int16 samples
        self.state = "prepared"

    @driver_fn(loc=68, subsystem="pcm")
    def _hw_params(self) -> None:
        self.clk_set_rate(self.controller.format.sample_rate)
        self.host.compute(350)

    @driver_fn(loc=31, subsystem="pcm")
    def _alloc_dma_buffer(self, nbytes: int) -> None:
        self._buf_addr = self.host.alloc_buffer(nbytes)
        self._buf_bytes = nbytes

    @driver_fn(loc=18, subsystem="pcm")
    def _release_dma_buffer(self) -> None:
        if self._buf_addr is not None:
            self.host.free_buffer(self._buf_addr)
            self._buf_addr = None
            self._buf_bytes = 0

    @driver_fn(loc=41, subsystem="pcm", entry_point=True)
    def trigger_start(self) -> None:
        """Enable the controller's receive path."""
        if self.state != "prepared":
            raise DeviceStateError(f"trigger_start in state {self.state!r}")
        self._reg_write(I2sReg.CTRL, int(CtrlBits.ENABLE | CtrlBits.RX_ENABLE))
        self.state = "capturing"

    @driver_fn(loc=37, subsystem="pcm", entry_point=True)
    def trigger_stop(self) -> None:
        """Disable the receive path and reset the FIFO."""
        if self.state != "capturing":
            raise DeviceStateError(f"trigger_stop in state {self.state!r}")
        self._reg_write(I2sReg.CTRL, int(CtrlBits.FIFO_RESET))
        self.state = "prepared"

    @driver_fn(loc=88, subsystem="pcm", entry_point=True)
    def read_chunk(self) -> np.ndarray:
        """Capture one period of audio into the I/O buffer; return samples.

        The heart of the data path: clocks frames in from the bus in
        FIFO-sized batches, drains the FIFO through the memory-mapped FIFO
        register (PIO), applies the mixer gain, and lands the int16 samples
        in the driver's I/O buffer — whose security attribute is decided
        entirely by the host that allocated it.
        """
        if self.state != "capturing":
            raise DeviceStateError(f"read_chunk in state {self.state!r}")
        if self._buf_addr is None:
            raise DriverError("no I/O buffer allocated")
        pcm = np.empty(self.chunk_frames, dtype=np.int16)
        filled = 0
        remaining = self.chunk_frames
        batch = max(1, self.controller.fifo_depth // 2)
        while remaining > 0:
            n = min(batch, remaining)
            self.controller.capture(n)
            if self.capture_mode == "dma":
                got = self._drain_fifo_dma(n)
            else:
                got = self._drain_fifo_pio(n)
            pcm[filled : filled + len(got)] = got
            filled += len(got)
            remaining -= n
        self._chunks_read += 1
        if filled < self.chunk_frames:
            # FIFO underrun: the contract is "at most one period"; callers
            # see the short array and the shortfall shows up in
            # capture_stats() rather than being silently zero-padded.
            self._short_reads += 1
            self._missing_frames += self.chunk_frames - filled
            pcm = pcm[:filled]
        pcm = self._apply_gain(pcm)
        self.host.write_mem(self._buf_addr, pcm16_encode(pcm))
        return pcm

    @driver_fn(loc=46, subsystem="pcm")
    def _drain_fifo_pio(self, max_words: int) -> np.ndarray:
        """Drain up to ``max_words`` samples via FIFO window reads.

        One FIFO_LEVEL poll plus one level-sized window read per
        iteration, instead of two register loads per word — the int16
        sign extension is vectorized over the whole block.
        """
        out = np.empty(max_words, dtype=np.int16)
        filled = 0
        while filled < max_words:
            level = self._reg_read(I2sReg.FIFO_LEVEL)
            if level == 0:
                break
            n = min(level, max_words - filled)
            words = self._fifo_window_read(n)
            out[filled : filled + n] = (
                (words & np.uint32(0xFFFF)).astype(np.uint16).view(np.int16)
            )
            filled += n
        return out[:filled]

    # ------------------------------------------------------------------
    # DMA capture path
    # ------------------------------------------------------------------

    @driver_fn(loc=21, subsystem="dma", entry_point=True)
    def set_capture_mode(self, mode: str) -> None:
        """Select ``"pio"`` (FIFO register reads) or ``"dma"`` drain mode."""
        if mode not in ("pio", "dma"):
            raise DriverError(f"unknown capture mode {mode!r}")
        if mode == "dma" and self._dma_staging_addr is None:
            self._dma_setup()
        self.capture_mode = mode

    @driver_fn(loc=48, subsystem="dma")
    def _dma_setup(self) -> None:
        """Program the DMA channel and allocate the staging buffer.

        The engine acts as a bus master with the *host's* security
        attribute: a secure-hosted driver gets secure DMA targeting the
        secure carveout; the TZASC would fault a non-secure engine there.
        """
        self._dma = DmaEngine(self.host.machine)
        words = max(1, self.controller.fifo_depth)
        self._dma_staging_addr = self.host.alloc_buffer(words * 4)
        self._dma_staging_words = words
        self.host.compute(self.host.machine.costs.dma_setup_cycles)

    @driver_fn(loc=52, subsystem="dma")
    def _drain_fifo_dma(self, max_words: int) -> np.ndarray:
        if self._dma is None or self._dma_staging_addr is None:
            raise DriverError("DMA not set up")
        out = np.empty(max_words, dtype=np.int16)
        filled = 0
        while filled < max_words:
            burst = min(max_words - filled, self._dma_staging_words)
            moved = self._dma.fifo_to_memory(
                self.controller, self._dma_staging_addr, burst,
                self.host.world,
            )
            if moved == 0:
                break
            raw = self.host.read_mem(self._dma_staging_addr, moved * 4)
            words = np.frombuffer(raw, dtype="<u4")
            out[filled : filled + moved] = (
                (words & np.uint32(0xFFFF)).astype(np.uint16).view(np.int16)
            )
            filled += moved
        return out[:filled]

    @driver_fn(loc=17, subsystem="dma")
    def _dma_teardown(self) -> None:
        if self._dma_staging_addr is not None:
            self.host.free_buffer(self._dma_staging_addr)
            self._dma_staging_addr = None
            self._dma = None

    @driver_fn(loc=29, subsystem="pcm")
    def _apply_gain(self, pcm: np.ndarray) -> np.ndarray:
        if self.muted:
            return np.zeros_like(pcm)
        if self.volume_pct == 100:
            return pcm
        scaled = pcm.astype(np.int32) * self.volume_pct // 100
        return scaled.clip(-32768, 32767).astype(np.int16)

    @driver_fn(loc=26, subsystem="pcm", entry_point=True)
    def pcm_pointer(self) -> int:
        """Frames captured so far (the ALSA pointer callback)."""
        return self._reg_read(I2sReg.FRAME_COUNT)

    @driver_fn(loc=34, subsystem="pcm", entry_point=True)
    def pcm_close(self) -> None:
        """Close the stream and release the I/O buffer."""
        if self.state == "capturing":
            self.trigger_stop()
        if self.state != "prepared":
            raise DeviceStateError(f"pcm_close in state {self.state!r}")
        self._release_dma_buffer()
        self.chunk_frames = 0
        self.state = "idle"

    @driver_fn(loc=57, subsystem="pcm", entry_point=True)
    def encode_chunk(self, pcm: np.ndarray, codec: str = "pcm16") -> bytes:
        """Encode captured samples (the paper's in-driver processing step)."""
        self.host.compute(len(pcm) * 3)
        if codec == "pcm16":
            return pcm16_encode(pcm)
        if codec == "mulaw":
            return mulaw_encode(pcm)
        raise DriverError(f"unknown codec {codec!r}")

    # ------------------------------------------------------------------
    # playback (TX) path — present, unused by the capture task
    # ------------------------------------------------------------------

    @driver_fn(loc=49, subsystem="tx", entry_point=True)
    def pcm_open_playback(self, chunk_frames: int) -> None:
        """Open a playback stream (TX path)."""
        if self.state != "idle":
            raise DeviceStateError(f"pcm_open_playback in state {self.state!r}")
        self.chunk_frames = chunk_frames
        self._tx_fifo_setup()
        self.state = "tx_prepared"

    @driver_fn(loc=42, subsystem="tx")
    def _tx_fifo_setup(self) -> None:
        self.host.compute(280)

    @driver_fn(loc=77, subsystem="tx", entry_point=True)
    def write_chunk(self, pcm: np.ndarray) -> int:
        """Queue samples for playback."""
        if self.state != "tx_prepared":
            raise DeviceStateError(f"write_chunk in state {self.state!r}")
        self._tx_push_fifo(pcm)
        return len(pcm)

    @driver_fn(loc=38, subsystem="tx")
    def _tx_push_fifo(self, pcm: np.ndarray) -> None:
        self.host.compute(len(pcm) * 2)

    @driver_fn(loc=27, subsystem="tx", entry_point=True)
    def pcm_close_playback(self) -> None:
        """Close the playback stream."""
        if self.state != "tx_prepared":
            raise DeviceStateError(f"pcm_close_playback in state {self.state!r}")
        self.chunk_frames = 0
        self.state = "idle"

    # ------------------------------------------------------------------
    # full duplex
    # ------------------------------------------------------------------

    @driver_fn(loc=83, subsystem="duplex", entry_point=True)
    def duplex_start(self, chunk_frames: int) -> None:
        """Start simultaneous capture + playback (loopback style)."""
        if self.state != "idle":
            raise DeviceStateError(f"duplex_start in state {self.state!r}")
        self.chunk_frames = chunk_frames
        self._hw_params()
        self._alloc_dma_buffer(chunk_frames * 2)
        self._tx_fifo_setup()
        self._reg_write(I2sReg.CTRL,
                        int(CtrlBits.ENABLE | CtrlBits.RX_ENABLE | CtrlBits.LOOPBACK))
        self.state = "duplex"

    @driver_fn(loc=35, subsystem="duplex", entry_point=True)
    def duplex_stop(self) -> None:
        """Stop a duplex stream."""
        if self.state != "duplex":
            raise DeviceStateError(f"duplex_stop in state {self.state!r}")
        self._reg_write(I2sReg.CTRL, int(CtrlBits.FIFO_RESET))
        self._release_dma_buffer()
        self.state = "idle"

    # ------------------------------------------------------------------
    # mixer controls
    # ------------------------------------------------------------------

    @driver_fn(loc=32, subsystem="mixer", entry_point=True)
    def set_volume(self, pct: int) -> None:
        """Set the capture gain (0-200%)."""
        if not 0 <= pct <= 200:
            raise DriverError(f"volume {pct}% out of range")
        self.volume_pct = pct
        self.host.compute(80)

    @driver_fn(loc=19, subsystem="mixer", entry_point=True)
    def get_volume(self) -> int:
        """Current capture gain."""
        return self.volume_pct

    @driver_fn(loc=23, subsystem="mixer", entry_point=True)
    def set_mute(self, muted: bool) -> None:
        """Mute/unmute the capture path."""
        self.muted = bool(muted)
        self.host.compute(60)

    @driver_fn(loc=45, subsystem="mixer", entry_point=True)
    def mixer_enumerate(self) -> list[str]:
        """List mixer control names (alsamixer-style discovery)."""
        self.host.compute(150)
        return ["Capture Volume", "Capture Switch", "Loopback Switch"]

    # ------------------------------------------------------------------
    # interrupt handling
    # ------------------------------------------------------------------

    @driver_fn(loc=66, subsystem="irq", entry_point=True)
    def irq_handler(self) -> str:
        """Service an interrupt: classify and clear the condition."""
        status = self._reg_read(I2sReg.STATUS)
        if status & StatusBits.OVERRUN:
            self._handle_overrun()
            return "overrun"
        return "spurious"

    @driver_fn(loc=43, subsystem="irq")
    def _handle_overrun(self) -> None:
        self._reg_write(I2sReg.STATUS, int(StatusBits.OVERRUN))
        self.host.compute(200)

    # ------------------------------------------------------------------
    # debug facilities
    # ------------------------------------------------------------------

    @driver_fn(loc=71, subsystem="debug", entry_point=True)
    def dump_registers(self) -> dict[str, int]:
        """debugfs-style register dump."""
        return {
            "ctrl": self._reg_read(I2sReg.CTRL),
            "status": self._reg_read(I2sReg.STATUS),
            "fifo_level": self._reg_read(I2sReg.FIFO_LEVEL),
            "frame_count": self._reg_read(I2sReg.FRAME_COUNT),
            "overruns": self._reg_read(I2sReg.OVERRUN_COUNT),
        }

    @driver_fn(loc=24, subsystem="debug", entry_point=True)
    def capture_stats(self) -> dict[str, int]:
        """Capture-path statistics (short reads surface FIFO underruns).

        ``short_reads`` counts chunks that came back smaller than the
        configured period; ``missing_frames`` totals the shortfall, so a
        caller can reconcile ``sum(len(chunk))`` against
        ``chunks * chunk_frames`` exactly.
        """
        return {
            "chunks": self._chunks_read,
            "short_reads": self._short_reads,
            "missing_frames": self._missing_frames,
        }

    @driver_fn(loc=54, subsystem="debug", entry_point=True)
    def selftest(self) -> bool:
        """Loopback self-test (manufacturing diagnostic)."""
        self.host.compute(2000)
        return self._regmap_ready and self._pinmux_done
