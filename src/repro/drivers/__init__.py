"""Device drivers, hostable in either world.

The paper's central move is *porting the driver*: the same driver logic can
run hosted by the untrusted kernel (baseline) or inside OP-TEE behind a PTA
(the proposed design).  This package provides:

* :mod:`~repro.drivers.base` — the driver framework: every driver function
  is declared with ``@driver_fn(loc=...)`` which (a) feeds the kernel's
  ftrace-style tracer and (b) carries a source-line-count so the TCB
  analyzer can size what gets ported;
* :mod:`~repro.drivers.hosting` — the two hosts (kernel / secure world);
* :mod:`~repro.drivers.i2s_driver` — a deliberately full-featured I²S
  driver modelled on the breadth of a real SoC audio stack;
* :mod:`~repro.drivers.camera_driver` — a V4L2-flavoured camera driver;
* :mod:`~repro.drivers.conformance` — a host-agnostic conformance suite a
  minimized driver must still pass (the safety net for trace-and-strip).
"""

from repro.drivers.base import Driver, DriverFunctionInfo, driver_fn
from repro.drivers.camera_driver import CameraDriver
from repro.drivers.hosting import DriverHost, KernelDriverHost, SecureDriverHost
from repro.drivers.i2s_driver import I2sDriver

__all__ = [
    "CameraDriver",
    "Driver",
    "DriverFunctionInfo",
    "DriverHost",
    "I2sDriver",
    "KernelDriverHost",
    "SecureDriverHost",
    "driver_fn",
]
