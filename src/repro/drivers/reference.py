"""Scalar reference implementations of the capture hot path.

The vectorized drains in :mod:`repro.drivers.i2s_driver` replaced the
original word-at-a-time register loops.  These functions preserve those
loops verbatim (one FIFO_LEVEL poll and one FIFO register load per word,
per-word Python sign extension) as an executable specification:

* the property tests assert the vectorized drains are *bit-identical* to
  these references for arbitrary FIFO levels, gains and chunk sizes;
* ``bench_t13_hotpath`` measures the vectorized path's speedup against
  them.

They operate *through* a live :class:`~repro.drivers.i2s_driver.I2sDriver`
instance's register helpers, so both paths pay the same class of MMIO
traffic — they are deliberately plain functions, not ``@driver_fn``
members, to keep the driver's TCB metadata (LoC accounting, trace-and-
strip function inventory) unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.drivers.i2s_driver import I2sDriver
from repro.peripherals.i2s import I2sReg


def drain_fifo_pio_scalar(driver: I2sDriver, max_words: int) -> np.ndarray:
    """Word-at-a-time PIO drain (the pre-vectorization loop)."""
    out: list[int] = []
    while len(out) < max_words:
        level = driver._reg_read(I2sReg.FIFO_LEVEL)
        if level == 0:
            break
        word = driver._reg_read(I2sReg.FIFO)
        sample = word & 0xFFFF
        if sample >= 0x8000:
            sample -= 0x10000
        out.append(sample)
    return np.array(out, dtype=np.int16)


def read_chunk_scalar(driver: I2sDriver) -> np.ndarray:
    """Chunk capture built on the scalar PIO drain.

    Mirrors ``I2sDriver.read_chunk`` exactly — same capture/drain
    interleave (so overrun behaviour matches), same gain and buffer
    landing — with only the drain implementation swapped.
    """
    samples: list[int] = []
    remaining = driver.chunk_frames
    batch = max(1, driver.controller.fifo_depth // 2)
    while remaining > 0:
        n = min(batch, remaining)
        driver.controller.capture(n)
        samples.extend(int(s) for s in drain_fifo_pio_scalar(driver, n))
        remaining -= n
    pcm = np.array(samples, dtype=np.int16)
    pcm = driver._apply_gain(pcm)
    from repro.peripherals.codec import pcm16_encode

    driver.host.write_mem(driver._buf_addr, pcm16_encode(pcm))
    return pcm
