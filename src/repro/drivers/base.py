"""Driver framework with built-in function instrumentation.

Two of the paper's mechanisms hang off this module:

1. **Tracing (research plan item 2).**  Every driver entry point and
   internal helper is declared with :func:`driver_fn`.  Calling it notifies
   the host's tracer (when one is attached) with the function name and its
   caller, exactly like the kernel ftrace logging the paper describes:
   "logging of driver function calls when a particular task ... is being
   executed".

2. **Conditional compilation.**  A driver *build* may exclude functions
   (``compiled_out``); invoking an excluded function raises, modelling the
   paper's "conditional compiler directives to selectively exclude driver
   functions ... from being compiled and included in the final OP-TEE
   image".  The TCB analyzer computes which functions a task needs and
   produces such builds.

Each ``@driver_fn`` also records a ``loc`` (lines of code) figure so TCB
size can be reported in both functions and LoC, as a driver-porting effort
metric.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import DriverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.drivers.hosting import DriverHost


@dataclass(frozen=True)
class DriverFunctionInfo:
    """Static metadata about one driver function."""

    name: str
    loc: int
    subsystem: str
    entry_point: bool


def driver_fn(
    loc: int,
    subsystem: str = "core",
    entry_point: bool = False,
) -> Callable:
    """Declare a driver function.

    Parameters
    ----------
    loc:
        Source lines this function would contribute to the ported image —
        the unit the TCB reduction experiment (T2) reports.
    subsystem:
        Grouping label (``"pcm"``, ``"clock"``, ``"power"``, ...) used in
        TCB breakdowns.
    entry_point:
        True for functions callable from outside the driver (the tracer
        treats calls to them as new call-stack roots).
    """

    def decorate(fn: Callable) -> Callable:
        info = DriverFunctionInfo(
            name=fn.__name__, loc=loc, subsystem=subsystem, entry_point=entry_point
        )

        @functools.wraps(fn)
        def wrapper(self: "Driver", *args: Any, **kwargs: Any) -> Any:
            return self._call_driver_fn(info, fn, args, kwargs)

        wrapper.driver_info = info  # type: ignore[attr-defined]
        return wrapper

    return decorate


class Driver:
    """Base class for instrumented drivers.

    Subclasses define functionality as ``@driver_fn``-decorated methods.
    The base class maintains the live call stack (for caller attribution in
    traces), charges per-call bookkeeping cycles, and enforces the
    compiled-out set of a minimized build.
    """

    NAME = "driver.base"

    def __init__(self, host: "DriverHost", compiled_out: frozenset[str] = frozenset()):
        self.host = host
        self.compiled_out = frozenset(compiled_out)
        self._call_stack: list[str] = []
        self.call_counts: dict[str, int] = {}

    # -- introspection ---------------------------------------------------------

    @classmethod
    def functions(cls) -> dict[str, DriverFunctionInfo]:
        """All declared driver functions of this class, by name."""
        out: dict[str, DriverFunctionInfo] = {}
        for attr in dir(cls):
            member = getattr(cls, attr, None)
            info = getattr(member, "driver_info", None)
            if isinstance(info, DriverFunctionInfo):
                out[info.name] = info
        return out

    @classmethod
    def total_loc(cls) -> int:
        """LoC of the full (un-minimized) driver."""
        return sum(info.loc for info in cls.functions().values())

    def compiled_loc(self) -> int:
        """LoC actually present in this build."""
        return sum(
            info.loc
            for info in self.functions().values()
            if info.name not in self.compiled_out
        )

    # -- instrumented dispatch ----------------------------------------------------

    def _call_driver_fn(
        self,
        info: DriverFunctionInfo,
        fn: Callable,
        args: tuple,
        kwargs: dict,
    ) -> Any:
        if info.name in self.compiled_out:
            raise DriverError(
                f"{self.NAME}: function {info.name!r} was compiled out of "
                f"this build"
            )
        caller = self._call_stack[-1] if self._call_stack else None
        self.host.on_driver_call(self.NAME, info, caller)
        self.call_counts[info.name] = self.call_counts.get(info.name, 0) + 1
        self._call_stack.append(info.name)
        try:
            return fn(self, *args, **kwargs)
        finally:
            self._call_stack.pop()
