#!/usr/bin/env python3
"""TCB minimization walkthrough (paper research plan, item 2).

1. Run the target task ("recording a sound") with the kernel's ftrace-style
   tracer armed.
2. Analyze the call log into a minimal function set.
3. Produce a conditional-compilation build excluding the rest.
4. Verify the minimized driver still passes the capture conformance suite.
5. Print the full-vs-minimized TCB table, per subsystem.

Run:  python examples/tcb_minimization.py
"""

import numpy as np

from repro.drivers.conformance import run_capture_conformance
from repro.drivers.i2s_driver import I2sDriver
from repro.kernel.kernel import I2sCharDevice, Kernel
from repro.peripherals.audio import ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.tcb.analyze import TcbAnalyzer
from repro.tcb.minimize import MinimizedBuild
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import MemoryRegion, SecurityAttr


def build_device():
    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
    kernel = Kernel(machine)
    driver = I2sDriver(kernel.driver_host, controller, region)
    kernel.register_device("/dev/snd/i2s0", I2sCharDevice(driver))
    return kernel, controller, region


def trace_task(kernel, task: str):
    """Trace one of three task profiles."""
    kernel.tracer.start(task)
    fd = kernel.sys_open("/dev/snd/i2s0")
    device = kernel.device("/dev/snd/i2s0")
    kernel.sys_ioctl(fd, "OPEN_CAPTURE", 128)
    if task != "record":
        kernel.sys_ioctl(fd, "SET_VOLUME", 80)
    kernel.sys_ioctl(fd, "START")
    raw = kernel.sys_read(fd, 512)
    kernel.sys_ioctl(fd, "POINTER")  # ALSA polls the pointer during capture
    device.driver.encode_chunk(np.frombuffer(raw, dtype="<i2").copy())
    if task == "record+volume+debug":
        kernel.sys_ioctl(fd, "DUMP_REGS")
    kernel.sys_ioctl(fd, "STOP")
    kernel.sys_ioctl(fd, "CLOSE_PCM")
    kernel.sys_close(fd)
    return kernel.tracer.stop()


def main() -> None:
    full_loc = I2sDriver.total_loc()
    full_fns = len(I2sDriver.functions())
    print(f"Full I2S driver: {full_fns} functions, {full_loc} LoC\n")

    analyzer = TcbAnalyzer(I2sDriver)
    keep_handlers = frozenset({"irq_handler", "_handle_overrun"})

    print(f"{'task':24s} {'fns':>5s} {'LoC':>6s} {'fn red.':>8s} {'LoC red.':>9s} {'conform':>8s}")
    print("-" * 66)
    for task in ("record", "record+volume", "record+volume+debug"):
        kernel, _, _ = build_device()
        session = trace_task(kernel, task)
        plan = analyzer.analyze([session], task=task, always_keep=keep_handlers)
        build = MinimizedBuild(I2sDriver, plan)

        # Deploy the minimized build on a fresh device and verify.
        kernel2, controller2, region2 = build_device()
        driver = build.instantiate(kernel2.driver_host, controller2, region2)
        driver.probe()
        report = run_capture_conformance(driver, chunk_frames=128)

        r = plan.report
        print(f"{task:24s} {r.functions_kept:>5d} {r.loc_kept:>6d} "
              f"{r.function_reduction_pct:>7.1f}% {r.loc_reduction_pct:>8.1f}% "
              f"{'PASS' if report.passed else 'FAIL':>8s}")

    print("\nPer-subsystem breakdown for task 'record':")
    kernel, _, _ = build_device()
    plan = analyzer.analyze(
        [trace_task(kernel, "record")], task="record", always_keep=keep_handlers
    )
    print(f"  {'subsystem':10s} {'LoC total':>10s} {'LoC kept':>9s} {'reduction':>10s}")
    for row in plan.report.rows():
        print(f"  {row['subsystem']:10s} {row['loc_total']:>10d} "
              f"{row['loc_kept']:>9d} {row['reduction_pct']:>9.1f}%")


if __name__ == "__main__":
    main()
