#!/usr/bin/env python3
"""A day in the life of a deployed assistant.

The deployment-realistic loop the other examples abstract away:

1. The device boots with a vendor-signed v1 classifier installed through
   the sealed model store (anti-rollback protected).
2. The microphone is captured *continuously*; the TA's in-enclave VAD
   segments the stream and filters each detected utterance.
3. Mid-day, the vendor ships a signed v2 model; the device installs it
   through the update path.  A forged 'update' and a rollback attempt are
   both rejected.

Run:  python examples/continuous_assistant.py
"""

import numpy as np

from repro.core.model_store import ModelStore, sign_package
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.workload import UtteranceWorkload
from repro.errors import AuthenticationFailure, TeeSecurityError
from repro.ml.dataset import UtteranceGenerator
from repro.provision import provision_bundle
from repro.sim.rng import SimRng
from repro.tz.worlds import World

VENDOR_KEY = b"acme-voice-vendor-signing-key-01"


def main() -> None:
    print("Provisioning v1 classifier ...")
    provisioned = provision_bundle(seed=33, architecture="cnn")
    bundle = provisioned.bundle
    platform = IotPlatform.create(seed=33)

    # --- 1. install the signed v1 model through the sealed store -------
    platform.machine.cpu._set_world(World.SECURE)
    try:
        store = ModelStore(platform.tee.storage, VENDOR_KEY)
        v1 = sign_package(
            "cnn", 1, bundle.filter.classifier.serialize(), VENDOR_KEY
        )
        store.install(v1.to_bytes())
        print(f"installed model v{store.installed_version()} "
              f"({len(v1.weights)} weight bytes, sealed at rest)\n")
    finally:
        platform.machine.cpu._set_world(World.NORMAL)

    # --- 2. continuous capture with in-enclave VAD ----------------------
    pipeline = SecurePipeline(platform, bundle)
    corpus = UtteranceGenerator(SimRng(33, "day")).generate(
        10, sensitive_fraction=0.5
    )
    workload = UtteranceWorkload.from_corpus(corpus, bundle.vocoder)
    print(f"capturing one continuous stream of {len(workload)} utterances "
          f"({workload.total_frames} samples) ...")
    run = pipeline.process_continuous(workload)
    for result in run.results:
        action = "forwarded" if result.forwarded else "BLOCKED  "
        print(f"  [{action}] \"{result.transcript}\"")
    print(f"VAD found {len(run.results)} segments; "
          f"{run.stage_cycles['vad']} cycles spent segmenting; "
          f"{platform.machine.monitor.smc_count} SMCs total\n")

    # --- 3. the model-update attack surface ------------------------------
    platform.machine.cpu._set_world(World.SECURE)
    try:
        print("vendor ships v2 ...")
        v2 = sign_package(
            "cnn", 2, bundle.filter.classifier.serialize(), VENDOR_KEY
        )
        store.install(v2.to_bytes())
        print(f"  accepted: now at v{store.installed_version()}")

        print("attacker ships a forged 'v3' ...")
        forged = sign_package(
            "cnn", 3, b"\x00" * 64, b"not-the-vendor-key-000000000000!"
        )
        try:
            store.install(forged.to_bytes())
        except AuthenticationFailure as exc:
            print(f"  rejected: {exc}")

        print("attacker replays the old v1 (rollback) ...")
        try:
            store.install(v1.to_bytes())
        except TeeSecurityError as exc:
            print(f"  rejected: {exc}")
        print(f"\ndevice still at v{store.installed_version()}; "
              f"normal world saw only sealed blobs throughout")
    finally:
        platform.machine.cpu._set_world(World.NORMAL)


if __name__ == "__main__":
    main()
