#!/usr/bin/env python3
"""Model zoo: the three TA-side architectures, fp32 and int8.

Paper Section IV-4 proposes CNN, Transformer and hybrid classifiers and
leaves the choice to "the final evaluation results obtained"; Section V
notes TEE memory forces smaller models.  This example trains all three,
quantizes each, and prints the deployment decision table — accuracy vs
size vs in-TEE inference cost vs heap fit.

Run:  python examples/model_zoo.py
"""

import numpy as np

from repro.ml.dataset import UtteranceGenerator
from repro.ml.models import build_classifier
from repro.ml.quantize import quantize_classifier
from repro.ml.tokenizer import WordTokenizer
from repro.ml.train import TrainConfig, Trainer
from repro.sim.rng import SimRng
from repro.tz.costs import DEFAULT_COSTS
from repro.tz.machine import MachineConfig

SECURE_HEAP = MachineConfig().secure_heap_bytes


def main() -> None:
    rng = SimRng(42)
    corpus = UtteranceGenerator(rng.fork("corpus")).generate(1400)
    train, test = corpus.split(0.8, rng.fork("split"))
    tokenizer = WordTokenizer(max_len=16).fit(
        UtteranceGenerator.all_template_texts()
    )

    header = (f"{'model':18s} {'acc':>6s} {'f1':>6s} {'params':>8s} "
              f"{'bytes':>8s} {'MACs':>9s} {'us/inf':>8s} {'fits TEE':>9s}")
    print(header)
    print("-" * len(header))

    for arch in ("cnn", "transformer", "hybrid"):
        model = build_classifier(
            arch, tokenizer.vocab_size, tokenizer.max_len,
            np.random.default_rng(1),
        )
        trainer = Trainer(model, tokenizer, TrainConfig(epochs=6))
        trainer.fit(train, test)
        metrics = trainer.evaluate(test)

        variants = [(arch, model, False)]
        quantized = quantize_classifier(model)
        variants.append((f"{arch}-int8", quantized, True))

        for name, m, is_int8 in variants:
            cycles = DEFAULT_COSTS.ml_inference_cycles(
                m.macs_per_inference(), secure=True, int8=is_int8
            )
            us = cycles / 2e9 * 1e6
            # int8 shares the trained weights; metrics re-evaluated:
            if is_int8:
                ids = tokenizer.encode_batch(test.texts)
                labels = np.array(test.labels)
                preds = m.predict(ids)
                acc = float((preds == labels).mean())
                from repro.ml.metrics import BinaryMetrics

                f1 = BinaryMetrics.from_predictions(labels, preds).f1
            else:
                acc, f1 = metrics.accuracy, metrics.f1
            fits = "yes" if m.size_bytes() <= SECURE_HEAP else "NO"
            print(f"{name:18s} {acc:6.3f} {f1:6.3f} {m.num_params():>8d} "
                  f"{m.size_bytes():>8d} {m.macs_per_inference():>9d} "
                  f"{us:>8.2f} {fits:>9s}")

    print(f"\nsecure heap budget: {SECURE_HEAP} bytes")


if __name__ == "__main__":
    main()
