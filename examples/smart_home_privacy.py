#!/usr/bin/env python3
"""Smart-home privacy evaluation: secure design vs conventional stack.

The scenario from the paper's introduction: a voice assistant hears a
household's mixed stream of commands and private conversations, while
three adversaries watch — a compromised OS snooping driver buffers, a
network eavesdropper, and the (honest-but-curious) cloud provider that
records everything it is sent.

Runs the same workload through both configurations, fires every attack,
and prints the leak audit side by side, then compares the three filter
policies (drop / redact / hash).

Run:  python examples/smart_home_privacy.py
"""

from repro.cloud.auditor import LeakAuditor
from repro.core.baseline import BaselinePipeline
from repro.core.filter import FilterPolicy, SensitiveFilter
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.workload import UtteranceWorkload
from repro.kernel.attacks import BufferSnoopAttack, WireEavesdropper
from repro.ml.dataset import UtteranceGenerator
from repro.provision import provision_bundle
from repro.sim.rng import SimRng

N_UTTERANCES = 24


def make_workload(bundle, seed=13):
    corpus = UtteranceGenerator(SimRng(seed, "household")).generate(
        N_UTTERANCES, sensitive_fraction=0.5
    )
    return UtteranceWorkload.from_corpus(corpus, bundle.vocoder)


def attack_and_audit(platform, pipeline, workload, bundle):
    """Run the workload under active attack; return the leak report."""
    snoop = BufferSnoopAttack(platform.machine)
    captures = []

    def attacker(p):
        captures.extend(snoop.run(p.attack_targets()).captured)

    run = pipeline.process(workload, after_each=attacker)
    auditor = LeakAuditor(workload.utterances, reference_asr=bundle.asr)
    auditor.decode_device_captures(captures)
    wire = WireEavesdropper(platform.supplicant.net).run().captured
    report = auditor.report(platform.cloud.received_transcripts, wire_bytes=wire)
    return run, report


def main() -> None:
    print("Training the in-enclave classifier ...")
    provisioned = provision_bundle(seed=21, architecture="cnn")
    bundle = provisioned.bundle
    print(f"  test accuracy: {provisioned.test_accuracy:.3f}\n")

    rows = []
    for label, build in [
        ("baseline (TLS, unfiltered)",
         lambda p: BaselinePipeline(p, bundle.asr, use_tls=True)),
        ("baseline (plaintext)",
         lambda p: BaselinePipeline(p, bundle.asr, use_tls=False)),
        ("secure (ours, DROP)",
         lambda p: SecurePipeline(p, bundle)),
    ]:
        platform = IotPlatform.create(seed=77)
        pipeline = build(platform)
        workload = make_workload(bundle)
        run, report = attack_and_audit(platform, pipeline, workload, bundle)
        rows.append((label, report, run))

    header = (f"{'configuration':28s} {'cloud':>6s} {'device':>7s} "
              f"{'wire':>6s} {'utility':>8s} {'ms/utt':>8s}")
    print(header)
    print("-" * len(header))
    for label, report, run in rows:
        ms = run.processing_latency_cycles().mean() / 2e9 * 1e3
        print(f"{label:28s} {report.cloud_leak_rate:6.0%} "
              f"{report.device_leak_rate:7.0%} {report.wire_leak_rate:6.0%} "
              f"{report.utility_rate:8.0%} {ms:8.2f}")

    print("\nFilter policies (secure pipeline):")
    for policy in FilterPolicy:
        bundle.filter.policy = policy
        platform = IotPlatform.create(seed=78)
        pipeline = SecurePipeline(platform, bundle)
        workload = make_workload(bundle)
        pipeline.process(workload)
        received = platform.cloud.received_transcripts
        sensitive_texts = {u.text for u in workload.utterances if u.sensitive}
        verbatim_leaks = sum(1 for t in received if t in sensitive_texts)
        print(f"  {policy.value:7s}: cloud received {len(received):2d} messages "
              f"for {len(workload)} utterances; "
              f"{verbatim_leaks} contained sensitive content")
    bundle.filter.policy = FilterPolicy.DROP


if __name__ == "__main__":
    main()
