#!/usr/bin/env python3
"""Camera guard: generalizing the design to image peripherals.

Paper research plan item 6 aims to apply the approach "to a larger and
more generic set of peripherals and data".  This example builds the image
branch with the library's primitives: a camera driver hosted in the
secure world behind a custom PTA, and a TA running an image classifier
that blocks frames containing a person from leaving the TEE.

It doubles as the extensibility demo: note that the PTA and TA here are
defined *in the example*, entirely on the public API.

Run:  python examples/camera_guard.py
"""

import numpy as np

from repro.core.platform import IotPlatform
from repro.drivers.camera_driver import CameraDriver
from repro.drivers.hosting import SecureDriverHost
from repro.ml.image import ImageClassifier
from repro.optee.client import TeeClient
from repro.optee.params import Params, Value
from repro.optee.pta import PseudoTa
from repro.optee.ta import TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.peripherals.camera import Camera, SyntheticScene
from repro.sim.rng import SimRng

CMD_GRAB = 1
CMD_STATS = 2


class SecureCameraPta(PseudoTa):
    """Hosts the camera driver in the secure world."""

    NAME = "pta.secure-camera"

    def __init__(self, camera: Camera):
        super().__init__()
        self._camera = camera
        self.driver: CameraDriver | None = None

    def on_invoke(self, cmd, payload, caller):
        if self.driver is None:
            host = SecureDriverHost(self.ctx)
            self.driver = CameraDriver(host, self._camera)
            self.driver.probe()
            self.driver.stream_on()
        if cmd == CMD_GRAB:
            self.require_caller(caller)
            return self.driver.capture_frame()
        raise AssertionError(f"unknown cmd {cmd}")


def make_camera_guard_ta(classifier: ImageClassifier, pta_uuid: TaUuid):
    """TA: capture a frame via the PTA, classify, release or block."""

    class CameraGuardTa(TrustedApplication):
        NAME = "ta.camera-guard"
        FLAGS = TaFlags.SINGLE_INSTANCE | TaFlags.MULTI_SESSION

        def __init__(self):
            super().__init__()
            self.blocked = 0
            self.released = 0

        def on_create(self, ctx):
            ctx.alloc(classifier.size_bytes())  # model in the secure heap

        def on_invoke(self, session, cmd, params):
            if cmd != CMD_GRAB:
                return super().on_invoke(session, cmd, params)
            frame = self.ctx.invoke_pta(pta_uuid, CMD_GRAB, None)
            costs = self.ctx._os.machine.costs
            self.ctx.compute(costs.ml_inference_cycles(
                classifier.macs_per_inference(), secure=True, int8=False
            ))
            person = bool(classifier.predict(frame)[0])
            if person:
                self.blocked += 1
                return {"released": False, "reason": "person detected"}
            self.released += 1
            # Only now may the frame leave the TEE (as a thumbnail here).
            return {"released": True,
                    "thumbnail_mean": float(frame.mean())}

    return CameraGuardTa


def train_classifier() -> ImageClassifier:
    """Train the person detector on labelled synthetic scenes."""
    frames, labels = [], []
    for prob, label in ((1.0, 1), (0.0, 0)):
        scene = SyntheticScene(SimRng(3 + label), person_probability=prob)
        cam = Camera(scene)
        for _ in range(80):
            frames.append(cam.capture_frame())
            labels.append(label)
    clf = ImageClassifier(32, 24, np.random.default_rng(0))
    clf.fit(np.stack(frames), np.array(labels), epochs=10)
    return clf


def main() -> None:
    print("Training the person detector ...")
    classifier = train_classifier()
    print(f"  {classifier.num_params()} params, "
          f"{classifier.size_bytes()} bytes\n")

    platform = IotPlatform.create(seed=9)
    pta = SecureCameraPta(platform.camera)
    platform.tee.register_pta(pta)
    ta_class = make_camera_guard_ta(classifier, pta.uuid)
    uuid = platform.tee.install_ta(ta_class)

    client = TeeClient(platform.machine)
    session = client.open_session(uuid)

    blocked = released = 0
    for i in range(20):
        verdict = session.invoke(CMD_GRAB, Params.of(Value(i)))
        truth = platform.camera.scene.last_label
        mark = "BLOCKED " if not verdict["released"] else "released"
        print(f"  frame {i:2d}: scene={truth:11s} -> {mark}")
        if verdict["released"]:
            released += 1
        else:
            blocked += 1

    print(f"\n{released} frames released, {blocked} blocked")
    print(f"secure-world frames never left the TEE; "
          f"TZASC violations available to audit: "
          f"{platform.machine.memory.violation_count}")
    session.close()


if __name__ == "__main__":
    main()
