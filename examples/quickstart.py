#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 pipeline in ~40 lines.

Builds a simulated TrustZone device, trains the sensitive-content
classifier, runs a mixed utterance stream through the secure pipeline,
and shows what the untrusted cloud actually received.

Run:  python examples/quickstart.py
"""

from repro import build_demo_pipeline

def main() -> None:
    print("Provisioning (training the classifier) ...")
    secure, workload, platform = build_demo_pipeline(seed=7, utterances=12)

    print(f"Processing {len(workload)} utterances through the TEE pipeline ...\n")
    run = secure.process(workload)

    for result in run.results:
        label = "SENSITIVE" if result.utterance.sensitive else "benign   "
        action = "forwarded" if result.forwarded else "BLOCKED"
        print(f"  [{label}] {action:9s}  p={result.sensitive_predicted and 1 or 0}"
              f"  \"{result.utterance.text}\"")

    print("\n--- what the cloud provider received ---")
    for transcript in platform.cloud.received_transcripts:
        print(f"  cloud saw: \"{transcript}\"")

    summary = run.summary()
    machine = platform.machine.summary()
    print("\n--- run summary ---")
    print(f"  utterances          : {summary['utterances']}")
    print(f"  forwarded to cloud  : {summary['forwarded']}")
    print(f"  classifier accuracy : {summary['accuracy']:.2f}")
    print(f"  mean latency        : {summary['mean_latency_cycles'] / 2e9 * 1e3:.2f} ms "
          f"({summary['mean_latency_cycles']:.0f} cycles)")
    print(f"  total energy        : {summary['total_energy_mj']:.1f} mJ")
    print(f"  world switches      : {machine['world_switches']}")
    print(f"  TZASC violations    : {machine['tzasc_violations']}")

if __name__ == "__main__":
    main()
