"""T9: relay robustness — fault injection, retries, store-and-forward.

The threat model's network is untrusted, so it also gets to be *unreliable*:
this experiment sweeps the injected send-failure rate (refusals, in-transit
drops and corrupted replies in equal parts) and shows the cost of riding it
out.  The paper's privacy claim must not decay into data loss: at every
fault rate each forwarded decision either reaches the cloud (possibly after
retries) or lands sealed in the store-and-forward queue, and one heartbeat
after the link recovers the backlog is empty — zero lost decisions, and the
wire still carries ciphertext only.
"""

from benchmarks.conftest import make_workload, write_result
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_HEARTBEAT, CMD_STATS
from repro.sim.faults import FaultConfig

RATES = (0.0, 0.1, 0.3, 0.5)


def run_once(bundle, rate: float, n=20):
    faults = FaultConfig.send_failure(rate) if rate > 0 else None
    platform = IotPlatform.create(seed=10, network_faults=faults)
    pipeline = SecurePipeline(platform, bundle)
    run = pipeline.process(make_workload(bundle, n=n))
    injected = (
        platform.supplicant.net.faults.summary()
        if platform.supplicant.net.faults is not None
        else {"sends": 0}
    )
    # Link recovery: lift the faults, flush the backlog with one heartbeat.
    platform.supplicant.net.set_fault_injector(None)
    pipeline.session.invoke(CMD_HEARTBEAT)
    stats = pipeline.session.invoke(CMD_STATS)["relay"]
    return run, stats, injected, platform


def test_t9_fault_tolerance(benchmark, bundle_cnn):
    rows = [
        f"{'fail rate':>9s} {'fwd':>4s} {'sent':>5s} {'queued':>6s} "
        f"{'drained':>7s} {'retries':>7s} {'rehs':>5s} {'ms/utt':>8s} "
        f"{'backoff Mcyc':>12s}"
    ]
    headline = {}
    baseline_latency = None
    for rate in RATES:
        run, stats, injected, platform = run_once(bundle_cnn, rate)
        forwarded = [r for r in run.results if r.forwarded]

        # The acceptance property: zero lost decisions at every rate.
        assert run.lost_count() == 0
        for result in forwarded:
            assert result.relay_status in ("sent", "queued")
        # After recovery + one heartbeat the backlog is fully drained and
        # every forwarded payload reached the cloud exactly once.
        assert stats["queue_depth"] == 0
        expected = sorted(r.payload for r in forwarded)
        assert sorted(platform.cloud.received_transcripts) == expected
        # Faults or not, the wire only ever carries ciphertext.
        for result in forwarded:
            needle = result.payload.encode()
            assert needle
            for frame in platform.supplicant.net.wire_log:
                assert needle not in frame

        mean_latency = (
            sum(r.latency_cycles for r in run.results) / len(run.results)
        )
        if rate == 0.0:
            baseline_latency = mean_latency
            # A zero rate means the injector is never even installed.
            assert injected["sends"] == 0
            assert stats["retries"] == 0 and stats["queued"] == 0
        else:
            assert injected["sends"] > 0
        rows.append(
            f"{rate:>9.1f} {len(forwarded):>4d} {run.sent_count():>5d} "
            f"{run.queued_count():>6d} {stats['drained']:>7d} "
            f"{stats['retries']:>7d} {stats['rehandshakes']:>5d} "
            f"{mean_latency / 2e9 * 1e3:>8.2f} "
            f"{stats['backoff_cycles'] / 1e6:>12.2f}"
        )
        headline[rate] = {
            "sent": run.sent_count(),
            "queued": run.queued_count(),
            "retries": stats["retries"],
            "latency_vs_clean": mean_latency / baseline_latency,
        }
    # Heavier fault rates must show the machinery actually engaging:
    # retries absorbed transient faults, and at 50% some payloads went
    # through the sealed queue and the post-recovery drain.
    assert headline[0.5]["retries"] > 0
    assert headline[0.5]["queued"] > 0
    assert headline[0.5]["latency_vs_clean"] >= 1.0

    write_result("t9_faults", "\n".join(rows))
    benchmark.extra_info["by_rate"] = {str(k): v for k, v in headline.items()}
    benchmark(lambda: None)
