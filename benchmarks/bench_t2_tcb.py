"""T2: TCB minimization — trace-and-strip per task profile.

The paper's research-plan item 2.  For each task profile the kernel
tracer logs the driver functions executed, the analyzer computes the
minimal set, and the resulting build must still pass capture conformance.
Reported: functions and LoC, full vs minimized, reduction percentages.
"""

import pathlib

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.deadtcb import compute_dead_tcb
from repro.analysis.modgraph import load_project
from repro.analysis.worlds import DEFAULT_WORLD_MAP
from repro.drivers.conformance import run_capture_conformance
from repro.drivers.i2s_driver import I2sDriver
from repro.kernel.kernel import I2sCharDevice, Kernel
from repro.peripherals.audio import ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.tcb.analyze import TcbAnalyzer
from repro.tcb.minimize import MinimizedBuild
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import MemoryRegion, SecurityAttr

ALWAYS_KEEP = frozenset({"irq_handler", "_handle_overrun"})


def build_device():
    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
    kernel = Kernel(machine)
    kernel.register_device(
        "/dev/snd/i2s0",
        I2sCharDevice(I2sDriver(kernel.driver_host, controller, region)),
    )
    return kernel, controller, region


def run_task(kernel, task):
    kernel.tracer.start(task)
    fd = kernel.sys_open("/dev/snd/i2s0")
    device = kernel.device("/dev/snd/i2s0")
    kernel.sys_ioctl(fd, "OPEN_CAPTURE", 128)
    if "volume" in task:
        kernel.sys_ioctl(fd, "SET_VOLUME", 80)
    kernel.sys_ioctl(fd, "START")
    raw = kernel.sys_read(fd, 512)
    kernel.sys_ioctl(fd, "POINTER")
    device.driver.encode_chunk(np.frombuffer(raw, dtype="<i2").copy())
    if "debug" in task:
        kernel.sys_ioctl(fd, "DUMP_REGS")
    kernel.sys_ioctl(fd, "STOP")
    kernel.sys_ioctl(fd, "CLOSE_PCM")
    kernel.sys_close(fd)
    return kernel.tracer.stop()


TASKS = ("record", "record+volume", "record+volume+debug")


def test_t2_tcb_reduction(benchmark):
    analyzer = TcbAnalyzer(I2sDriver)
    full_loc = I2sDriver.total_loc()
    full_fns = len(I2sDriver.functions())

    rows = [f"full driver: {full_fns} functions, {full_loc} LoC", ""]
    rows.append(f"{'task':24s} {'fns':>5s} {'LoC':>6s} {'fn red.':>8s} "
                f"{'LoC red.':>9s} {'conform':>8s}")
    reductions = {}
    dynamic_union: frozenset[str] = frozenset()
    for task in TASKS:
        kernel, _, _ = build_device()
        session = run_task(kernel, task)
        plan = analyzer.analyze([session], task=task, always_keep=ALWAYS_KEEP)
        build = MinimizedBuild(I2sDriver, plan)

        kernel2, controller2, region2 = build_device()
        driver = build.instantiate(kernel2.driver_host, controller2, region2)
        driver.probe()
        conform = run_capture_conformance(driver, chunk_frames=128)

        r = plan.report
        reductions[task] = r.loc_reduction_pct
        dynamic_union |= plan.keep
        rows.append(
            f"{task:24s} {r.functions_kept:>5d} {r.loc_kept:>6d} "
            f"{r.function_reduction_pct:>7.1f}% {r.loc_reduction_pct:>8.1f}% "
            f"{'PASS' if conform.passed else 'FAIL':>8s}"
        )
        assert conform.passed

    # Static complement (dead-TCB): driver functions reachable from the
    # TA's entry points that no task profile above ever executed.
    package_root = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
    dead = compute_dead_tcb(
        load_project(package_root), DEFAULT_WORLD_MAP, I2sDriver,
        dynamic_hit=dynamic_union,
    )
    rows += [
        "",
        f"dead TCB (static reach \\ dynamic, all tasks): "
        f"{len(dead.dead)}/{len(dead.static_reachable)} functions, "
        f"{dead.dead_loc} LoC",
    ]
    rows += [f"  dead: {fn} ({dead.loc.get(fn, 0)} LoC)" for fn in dead.dead]

    write_result("t2_tcb", "\n".join(rows))
    benchmark.extra_info["loc_reduction_pct"] = reductions
    benchmark.extra_info["dead_tcb"] = {
        "static_reachable": len(dead.static_reachable),
        "dynamic_hit": len(dead.dynamic_hit),
        "dead_functions": len(dead.dead),
        "dead_loc": dead.dead_loc,
    }

    # Benchmark the analysis step itself (trace -> plan).
    kernel, _, _ = build_device()
    session = run_task(kernel, "record")
    benchmark(
        lambda: TcbAnalyzer(I2sDriver).analyze(
            [session], task="record", always_keep=ALWAYS_KEEP
        )
    )
    # Shape: every profile drops at least a third of the driver.
    assert all(v > 33.0 for v in reductions.values())
    # And richer tasks keep (weakly) more code.
    assert reductions["record"] >= reductions["record+volume+debug"]
