"""T7: the hard-corpus regime — where filtering stops being free.

The clean synthetic corpus is lexically separable, so every architecture
sits at ceiling accuracy and the threshold sweep is flat (F2).  Real
household speech is not like that: "add insulin to the shopping list" is
a shopping command wearing health vocabulary.  This experiment mixes in
ambiguous templates (``hard_fraction``) and measures:

* per-architecture accuracy/F1/AUC as ambiguity grows, and
* the secure pipeline's leak/utility trade-off curve on the hard mix —
  the non-degenerate version of the F2 threshold sweep.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.cloud.auditor import LeakAuditor
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.workload import UtteranceWorkload
from repro.ml.dataset import UtteranceGenerator
from repro.ml.metrics import BinaryMetrics, auc, roc_curve
from repro.provision import provision_bundle
from repro.sim.rng import SimRng


def test_t7_ambiguity_sweep(benchmark):
    rows = [f"{'hard frac':>10s} {'arch':>12s} {'acc':>6s} {'f1':>6s} "
            f"{'auc':>6s}"]
    info = {}
    for hard in (0.0, 0.3, 0.6):
        for arch in ("cnn", "transformer", "hybrid"):
            provisioned = provision_bundle(
                seed=43, architecture=arch, corpus_size=1000, epochs=5,
                hard_fraction=hard,
            )
            bundle = provisioned.bundle
            corpus = provisioned.test_corpus
            ids = bundle.filter.tokenizer.encode_batch(corpus.texts)
            labels = np.array(corpus.labels)
            scores = bundle.filter.classifier.predict_proba(ids)
            metrics = BinaryMetrics.from_predictions(
                labels, (scores >= 0.5).astype(int)
            )
            fpr, tpr, _ = roc_curve(labels, scores)
            area = auc(fpr, tpr)
            rows.append(f"{hard:>10.1f} {arch:>12s} {metrics.accuracy:>6.3f} "
                        f"{metrics.f1:>6.3f} {area:>6.3f}")
            info[f"{arch}@{hard}"] = metrics.accuracy
    write_result("t7_ambiguity", "\n".join(rows))
    benchmark.extra_info.update(info)
    benchmark(lambda: None)

    # Shapes: ambiguity hurts; hard mix is no longer at ceiling but far
    # above chance.
    for arch in ("cnn", "transformer", "hybrid"):
        assert info[f"{arch}@0.0"] >= info[f"{arch}@0.6"]
        assert info[f"{arch}@0.6"] > 0.6


def test_t7_threshold_tradeoff_on_hard_mix(benchmark):
    """The leak/utility curve finally bends: each threshold buys a
    different point on the privacy/utility frontier."""
    provisioned = provision_bundle(
        seed=43, architecture="cnn", corpus_size=1000, epochs=5,
        hard_fraction=0.5,
    )
    bundle = provisioned.bundle
    rows = [f"{'threshold':>10s} {'cloud leak':>11s} {'utility':>8s}"]
    series = []
    for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
        bundle.filter.threshold = threshold
        platform = IotPlatform.create(seed=14)
        pipeline = SecurePipeline(platform, bundle)
        corpus = UtteranceGenerator(SimRng(131, "t7")).generate(
            20, sensitive_fraction=0.5, hard_fraction=0.5
        )
        workload = UtteranceWorkload.from_corpus(corpus, bundle.vocoder)
        pipeline.process(workload)
        report = LeakAuditor(workload.utterances).report(
            platform.cloud.received_transcripts
        )
        series.append(
            (threshold, report.cloud_leak_rate, report.utility_rate)
        )
        rows.append(f"{threshold:>10.1f} {report.cloud_leak_rate:>11.0%} "
                    f"{report.utility_rate:>8.0%}")
    bundle.filter.threshold = 0.5
    write_result("t7_threshold_tradeoff", "\n".join(rows))
    benchmark.extra_info["series"] = series
    benchmark(lambda: None)

    leaks = [s[1] for s in series]
    utils = [s[2] for s in series]
    # Monotone trade-off: higher threshold can only leak more / deliver more.
    assert all(a <= b + 1e-9 for a, b in zip(leaks, leaks[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:]))
    # And the curve actually moves on the hard mix.
    assert max(leaks) > min(leaks) or max(utils) > min(utils)
