"""T3: ML architecture comparison (paper Section IV-4).

CNN vs Transformer vs hybrid on the same corpus: quality (accuracy/F1 at
WER 0 and under ASR noise), size (params/bytes), in-TEE inference cost
(MACs → secure-world cycles), and secure-heap fit.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.ml.asr import NoisyChannel
from repro.ml.metrics import BinaryMetrics
from repro.sim.rng import SimRng
from repro.tz.costs import DEFAULT_COSTS
from repro.tz.machine import MachineConfig

NOISE_WER = 0.25


def evaluate(bundle, corpus, wer=0.0, seed=5):
    """Accuracy/F1 of a bundle's classifier, optionally through ASR noise."""
    tokenizer = bundle.filter.tokenizer
    texts = corpus.texts
    if wer > 0:
        channel = NoisyChannel(SimRng(seed, "t3"), wer, bundle.vocoder.vocabulary)
        texts = [channel.corrupt(t) for t in texts]
    ids = tokenizer.encode_batch(texts)
    labels = np.array(corpus.labels)
    preds = bundle.filter.classifier.predict(ids)
    return BinaryMetrics.from_predictions(labels, preds)


def test_t3_architecture_comparison(benchmark, provisioned_all):
    heap = MachineConfig().secure_heap_bytes
    rows = [f"{'arch':12s} {'acc':>6s} {'f1':>6s} {'acc@wer25':>10s} "
            f"{'params':>8s} {'bytes':>8s} {'MACs':>9s} {'us/inf':>7s} "
            f"{'fits':>5s}"]
    info = {}
    for arch, provisioned in provisioned_all.items():
        bundle = provisioned.bundle
        test_corpus = provisioned.test_corpus
        clean = evaluate(bundle, test_corpus)
        noisy = evaluate(bundle, test_corpus, wer=NOISE_WER)
        model = bundle.filter.classifier
        cycles = DEFAULT_COSTS.ml_inference_cycles(
            model.macs_per_inference(), secure=True, int8=False
        )
        us = cycles / 2e9 * 1e6
        fits = model.size_bytes() <= heap
        rows.append(
            f"{arch:12s} {clean.accuracy:6.3f} {clean.f1:6.3f} "
            f"{noisy.accuracy:>10.3f} {model.num_params():>8d} "
            f"{model.size_bytes():>8d} {model.macs_per_inference():>9d} "
            f"{us:>7.2f} {'yes' if fits else 'NO':>5s}"
        )
        info[arch] = {
            "accuracy": clean.accuracy,
            "accuracy_wer25": noisy.accuracy,
            "bytes": model.size_bytes(),
            "macs": model.macs_per_inference(),
        }
        # Every candidate must be deployable and useful.
        assert fits
        assert clean.accuracy > 0.9
        assert noisy.accuracy > 0.7

    rows.append("")
    rows.append(f"secure heap budget: {heap} bytes; "
                f"noise condition: word error rate {NOISE_WER:.0%}")
    write_result("t3_models", "\n".join(rows))
    benchmark.extra_info.update(info)

    # Benchmark: one classifier inference (CNN), the per-utterance TA cost.
    bundle = provisioned_all["cnn"].bundle
    ids = bundle.filter.tokenizer.encode_batch(
        ["the password for the email is four two seven one"]
    )
    benchmark(lambda: bundle.filter.classifier.predict_proba(ids))

    # Shape: the transformer is the biggest & most expensive.
    assert info["transformer"]["macs"] > info["cnn"]["macs"]
    assert info["transformer"]["bytes"] > info["hybrid"]["bytes"]
