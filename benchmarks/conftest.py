"""Shared benchmark fixtures and result reporting.

Each benchmark regenerates one experiment from DESIGN.md's index.  The
wall-clock numbers pytest-benchmark reports measure the *simulator*; the
experiment's actual findings (simulated cycles, energy, leak rates, TCB
sizes) are printed and written to ``benchmarks/results/<id>.txt`` so they
survive output capture, and the headline values are attached to
``benchmark.extra_info``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.workload import UtteranceWorkload
from repro.ml.dataset import UtteranceGenerator
from repro.provision import provision_bundle
from repro.sim.rng import SimRng

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir() -> pathlib.Path:
    """Results directory, created once per session.

    Benchmarks that write extra artifacts (``profile.json``,
    ``fleet.json``) rely on this instead of repeating ``mkdir`` inline.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(experiment: str, text: str) -> None:
    """Persist one experiment's table and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text)
    print(f"\n=== {experiment} ===\n{text}")


@pytest.fixture(scope="session")
def bundle_cnn():
    """Trained CNN bundle (the default deployment)."""
    return provision_bundle(seed=42, architecture="cnn", corpus_size=1000,
                            epochs=5).bundle


@pytest.fixture(scope="session")
def provisioned_all():
    """All three architectures, trained on the same data."""
    return {
        arch: provision_bundle(
            seed=42, architecture=arch, corpus_size=1000, epochs=5
        )
        for arch in ("cnn", "transformer", "hybrid")
    }


def make_workload(bundle, n=10, seed=97, sensitive_fraction=0.5):
    """A reproducible workload rendered through the bundle's vocoder."""
    corpus = UtteranceGenerator(SimRng(seed, "bench")).generate(
        n, sensitive_fraction=sensitive_fraction
    )
    return UtteranceWorkload.from_corpus(corpus, bundle.vocoder)
