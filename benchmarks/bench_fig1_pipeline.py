"""F1 (Fig. 1): the end-to-end secure pipeline, stage by stage.

The paper's only figure is the design itself; this benchmark runs it and
reports the per-stage cost breakdown (capture → ASR → classify → filter →
relay), which is the quantitative content Fig. 1 implies.
"""

from benchmarks.conftest import make_workload, write_result
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform


def test_fig1_secure_pipeline(benchmark, bundle_cnn):
    platform = IotPlatform.create(seed=1)
    pipeline = SecurePipeline(platform, bundle_cnn)
    workload = make_workload(bundle_cnn, n=8)
    items = iter(workload.items * 1000)  # enough for any round count

    # Warm-up: first utterance pays PTA INIT + TLS handshake.
    pipeline.process_item(workload.items[0])

    def one_utterance():
        return pipeline.process_item(next(items))

    result = benchmark(one_utterance)

    run = pipeline.process(workload)
    total = sum(run.stage_cycles.values()) or 1
    lines = [f"{'stage':10s} {'cycles':>14s} {'ms':>9s} {'share':>7s}"]
    for stage, cycles in run.stage_cycles.items():
        ms = cycles / 2e9 * 1e3
        lines.append(
            f"{stage:10s} {cycles:>14d} {ms:>9.2f} {cycles / total:>6.1%}"
        )
    lines.append("")
    lines.append(f"decisions: {run.forwarded_count()} forwarded, "
                 f"{run.blocked_count()} blocked of {len(run)}")
    lines.append(f"classifier accuracy on path: {run.classifier_accuracy():.3f}")
    write_result("fig1_pipeline", "\n".join(lines))

    benchmark.extra_info["stage_cycles"] = run.stage_cycles
    benchmark.extra_info["accuracy"] = run.classifier_accuracy()
    assert run.classifier_accuracy() >= 0.8
