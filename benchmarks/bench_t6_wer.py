"""T6: ASR robustness — classifier quality and end-to-end leakage vs WER.

The TA classifies ASR output, so recognition errors propagate into
filtering decisions.  Sweeps the word-error-rate channel and reports
classifier accuracy and end-to-end cloud leakage, plus the hardened
variant trained on corrupted transcripts (DESIGN.md ablation).
"""

import numpy as np

from benchmarks.conftest import make_workload, write_result
from repro.cloud.auditor import LeakAuditor
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.ml.asr import NoisyChannel
from repro.ml.metrics import BinaryMetrics
from repro.provision import provision_bundle
from repro.sim.rng import SimRng

WERS = (0.0, 0.1, 0.2, 0.4)


def classifier_accuracy_at_wer(provisioned, wer, seed=9):
    bundle = provisioned.bundle
    corpus = provisioned.test_corpus
    texts = corpus.texts
    if wer > 0:
        channel = NoisyChannel(SimRng(seed, "t6"), wer,
                               bundle.vocoder.vocabulary)
        texts = [channel.corrupt(t) for t in texts]
    ids = bundle.filter.tokenizer.encode_batch(texts)
    labels = np.array(corpus.labels)
    preds = bundle.filter.classifier.predict(ids)
    return BinaryMetrics.from_predictions(labels, preds)


def leakage_at_wer(bundle, wer, n=12):
    """End-to-end: corrupt transcripts between ASR and classification.

    Implemented by pre-corrupting the *spoken* text (rendering corrupted
    words), which reaches the TA exactly as ASR output with that WER.
    """
    from repro.ml.dataset import Corpus, Utterance
    from repro.core.workload import UtteranceWorkload

    platform = IotPlatform.create(seed=10)
    pipeline = SecurePipeline(platform, bundle)
    base = make_workload(bundle, n=n, seed=107)
    if wer > 0:
        channel = NoisyChannel(SimRng(11, "t6-e2e"), wer,
                               bundle.vocoder.vocabulary)
        corrupted = Corpus([
            Utterance(text=channel.corrupt(u.text), category=u.category)
            for u in base.utterances
        ])
        workload = UtteranceWorkload.from_corpus(corrupted, bundle.vocoder)
        # Ground truth stays the original (uncorrupted) utterances' labels;
        # the corrupted text carries the category over.
    else:
        workload = base
    pipeline.process(workload)
    report = LeakAuditor(workload.utterances).report(
        platform.cloud.received_transcripts
    )
    return report


def test_t6_wer_robustness(benchmark, provisioned_all):
    provisioned = provisioned_all["cnn"]
    hardened = provision_bundle(
        seed=42, architecture="cnn", corpus_size=1000, epochs=5, train_wer=0.2
    )
    rows = [f"{'WER':>5s} {'acc (clean-trained)':>20s} "
            f"{'acc (noise-trained)':>20s} {'e2e cloud leak':>15s}"]
    series = []
    for wer in WERS:
        clean = classifier_accuracy_at_wer(provisioned, wer)
        hard = classifier_accuracy_at_wer(hardened, wer)
        report = leakage_at_wer(provisioned.bundle, wer)
        series.append((wer, clean.accuracy, hard.accuracy,
                       report.cloud_leak_rate))
        rows.append(f"{wer:>5.2f} {clean.accuracy:>20.3f} "
                    f"{hard.accuracy:>20.3f} "
                    f"{report.cloud_leak_rate:>15.0%}")
    write_result("t6_wer", "\n".join(rows))
    benchmark.extra_info["series"] = series
    benchmark(lambda: None)

    # Shapes: graceful degradation; noise-training helps at high WER.
    accs = [s[1] for s in series]
    assert accs[0] > 0.95
    assert accs[-1] > 0.6  # degraded but far above chance
    assert accs[0] >= accs[-1]
    clean_at_04 = series[-1][1]
    hard_at_04 = series[-1][2]
    assert hard_at_04 >= clean_at_04 - 0.02  # hardening never much worse
