"""T16 — max sustained cloud ingest under multi-tenant backpressure.

Drives one sharded :class:`VoiceCloudService` (admission tier enabled)
directly through its plaintext endpoint with a hand-advanced simulation
clock — no device pipelines, so the numbers isolate the ingestion tier
itself.  A fixed tenant population offers load at a sweep of per-tenant
rates, from comfortably under capacity to 8x over it, and each level
reports:

* **accepted records/sec** (simulated time) — the sustained ingest rate
  the tier actually admits at that offered load;
* **shed rate** — Throttled verdicts per offered record, the
  backpressure signal devices turn into sealed-queue spills;
* **p99 admission latency** (modelled cycles) — from the
  ``cloud.ingest.admission_cycles`` histogram the admission SLO reads.

The headline gate values: the best sustained rate across the sweep (the
capacity knee, normally set by the drain loop, not the token buckets),
the shed rate at the most overloaded level (proving the tier defends
itself instead of queueing without bound), and the p99 admission budget
at the knee.  Every level also re-proves exactly-once: accepted +
throttled + deduped == offered, and committed dialog ids are unique.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.cloud.service import IngestionConfig, VoiceCloudService
from repro.obs.metrics import MetricsRegistry
from repro.relay.avs import AvsEvent
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.rng import SimRng

TENANTS = 32
TICKS = 80          # rounds per level; every tenant offers one record/round
WARMUP_TICKS = 16   # initial bucket burst excluded from rate accounting
FREQ_HZ = 2e9       # the sim clock the cycle numbers are quoted against

#: Per-tenant inter-arrival cycles, generous -> starved.  The stock
#: config refills one token per 2e6 cycles and commits one record per
#: 500e3 cycles per shard, so the knee sits where the drain loop
#: saturates, well before the token buckets do.
LEVELS = (8_000_000, 4_000_000, 2_000_000, 1_000_000, 500_000, 250_000)


def _run_level(inter_arrival_cycles: int) -> dict:
    clock = SimClock()
    metrics = MetricsRegistry()
    service = VoiceCloudService(
        SimRng(16, "cloud"), clock=clock, metrics=metrics,
        ingestion=IngestionConfig(),
    )
    endpoint = service.plaintext_endpoint
    dialog = 0
    offered = accepted_at_warmup = throttled_at_warmup = 0
    for tick in range(TICKS):
        if tick == WARMUP_TICKS:
            accepted_at_warmup = service.accepted
            throttled_at_warmup = service.throttled
        clock.advance(inter_arrival_cycles, CycleDomain.IDLE)
        for tenant in range(TENANTS):
            dialog += 1
            event = AvsEvent.recognize(
                f"record {dialog}", dialog, device_id=f"tenant-{tenant:03d}"
            )
            endpoint.receive(event.to_bytes())
            offered += 1

    service.flush()
    # Exactly-once bookkeeping must hold at every load level.
    assert service.accepted + service.throttled == offered
    assert service.committed == service.accepted
    keys = {(r.device_id, r.dialog_id) for r in service.received}
    assert len(keys) == len(service.received)

    measured = offered - WARMUP_TICKS * TENANTS
    window_cycles = (TICKS - WARMUP_TICKS) * inter_arrival_cycles
    accepted = service.accepted - accepted_at_warmup
    throttled = service.throttled - throttled_at_warmup
    hist = metrics.histogram("cloud.ingest.admission_cycles")
    return {
        "inter_arrival_cycles": inter_arrival_cycles,
        "offered_per_sec": measured * FREQ_HZ / (window_cycles * 1.0),
        "accepted_per_sec": accepted * FREQ_HZ / (window_cycles * 1.0),
        "shed_rate": throttled / measured,
        "admission_p99_cycles": hist.quantile(0.99),
        "events": offered,
    }


def test_t16_max_sustained_ingest(benchmark):
    t0 = time.perf_counter()
    rows = benchmark.pedantic(
        lambda: [_run_level(level) for level in LEVELS],
        rounds=1, iterations=1,
    )
    wall_s = time.perf_counter() - t0
    total_events = sum(r["events"] for r in rows)

    # "Sustained" means admitted without backpressure: overloaded levels
    # post higher transient accept rates while the bounded tenant queues
    # fill, but those are not rates the tier can hold.
    sustained = [r for r in rows if r["shed_rate"] <= 0.01]
    assert sustained, "no load level was sustainable"
    knee = max(sustained, key=lambda r: r["accepted_per_sec"])
    overloaded = rows[-1]
    # Backpressure must actually engage under overload...
    assert overloaded["shed_rate"] > 0.3
    # ...and the generous level must sail through unthrottled.
    assert rows[0]["shed_rate"] == 0.0

    headline = {
        "max_sustained_records_per_sec": knee["accepted_per_sec"],
        "knee_shed_rate": knee["shed_rate"],
        "overload_shed_rate": overloaded["shed_rate"],
        "admission_p99_cycles": knee["admission_p99_cycles"],
        "wall_records_per_sec": total_events / wall_s,
        "tenants": TENANTS,
    }
    benchmark.extra_info.update(headline)

    lines = [
        f"T16: multi-tenant ingest sweep — {TENANTS} tenants, "
        f"{TICKS} rounds/level ({WARMUP_TICKS} warmup)",
        "",
        f"{'offered/s':>12} {'accepted/s':>12} {'shed':>8} {'p99 adm cyc':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['offered_per_sec']:>12.0f} "
            f"{row['accepted_per_sec']:>12.0f} "
            f"{row['shed_rate']:>8.3f} "
            f"{row['admission_p99_cycles']:>12.0f}"
        )
    lines += [
        "",
        f"max sustained ingest  {headline['max_sustained_records_per_sec']:.0f} records/sec (sim)",
        f"shed rate at knee     {headline['knee_shed_rate']:.3f}",
        f"shed rate at 8x load  {headline['overload_shed_rate']:.3f}",
        f"p99 admission         {headline['admission_p99_cycles']:.0f} cycles",
        f"harness throughput    {headline['wall_records_per_sec']:.0f} records/sec (wall)",
    ]
    write_result("t16_ingest", "\n".join(lines))
    (RESULTS_DIR / "t16_ingest.json").write_text(
        json.dumps({"levels": rows, "headline": headline}, indent=2)
    )
