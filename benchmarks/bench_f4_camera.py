"""F4: the camera branch (research plan item 6).

The generalization experiment: the same architecture (secure driver
behind a PTA, in-enclave classifier, nothing sensitive leaves the TEE)
applied to image frames.  Reports guard quality against scene ground
truth, per-frame cost, and the isolation check.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.core.camera_pipeline import (
    SecureCameraPipeline,
    train_person_detector,
)
from repro.core.platform import IotPlatform
from repro.errors import SecureAccessViolation
from repro.tz.worlds import World

N_FRAMES = 24


def test_f4_camera_guard(benchmark):
    detector = train_person_detector(seed=3, frames_per_class=70, epochs=8)
    platform = IotPlatform.create(seed=16)
    pipeline = SecureCameraPipeline(platform, detector)
    run = pipeline.run(N_FRAMES)

    # Isolation spot-check from the adversary's side.
    driver = pipeline.pta.driver
    assert driver is not None and driver._buf_addr is not None
    try:
        platform.machine.memory.read(
            driver._buf_addr, 16, World.NORMAL
        )
        frame_buffer_secure = False
    except SecureAccessViolation:
        frame_buffer_secure = True

    mean_cycles = float(
        np.mean([f.latency_cycles for f in run.frames])
    )
    rows = [
        f"frames processed      : {len(run.frames)}",
        f"released / blocked    : {run.released} / {run.blocked}",
        f"guard accuracy        : {run.accuracy():.3f}",
        f"mean cycles per frame : {mean_cycles:.0f} "
        f"({mean_cycles / 2e9 * 1e3:.3f} ms)",
        f"detector size         : {detector.size_bytes()} bytes, "
        f"{detector.macs_per_inference()} MACs/frame",
        f"frame buffer secure   : {frame_buffer_secure}",
    ]
    write_result("f4_camera", "\n".join(rows))
    benchmark.extra_info["accuracy"] = run.accuracy()

    # Benchmark one guarded frame (capture + in-TEE inference + decision).
    benchmark(pipeline.guard_frame)

    assert run.accuracy() > 0.85
    assert frame_buffer_secure
    assert 0 < run.released < N_FRAMES  # both classes occurred and differ