"""T8: protocol complexity — I²S vs USB for the secure-capture TCB.

The paper's §III design decision, quantified: "We chose the I²S protocol
for our preliminary use case because it is lightweight, contrary to more
complex protocols like USB."  Both drivers run the identical task (record
a chunk of audio) under the tracer; the table compares full and minimized
driver sizes, the trace-based reduction, and the control-plane traffic
the protocols force.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.drivers.i2s_driver import I2sDriver
from repro.drivers.hosting import KernelDriverHost
from repro.drivers.usb_audio_driver import UsbAudioDriver
from repro.kernel.tracer import FunctionTracer
from repro.peripherals.audio import ToneSource
from repro.peripherals.usb import UsbAudioMicrophone, UsbBus
from repro.tcb.analyze import TcbAnalyzer
from repro.tz.machine import TrustZoneMachine
from tests.test_tcb import build_rig, trace_record_task


def trace_usb_record():
    machine = TrustZoneMachine()
    mic = UsbAudioMicrophone(ToneSource())
    bus = UsbBus(machine.clock, mic)
    host = KernelDriverHost(machine)
    driver = UsbAudioDriver(host, bus)
    tracer = FunctionTracer()
    host.attach_tracer(tracer)
    tracer.start("record")
    driver.probe()
    driver.pcm_open_capture(128)
    driver.trigger_start()
    driver.read_chunk()
    driver.trigger_stop()
    driver.pcm_close()
    session = tracer.stop()
    return session, bus


def test_t8_protocol_complexity(benchmark):
    # I2S side
    _, kernel, _, _ = build_rig()
    i2s_session = trace_record_task(kernel)
    i2s_plan = TcbAnalyzer(I2sDriver).analyze([i2s_session], task="record")

    # USB side
    usb_session, usb_bus = trace_usb_record()
    usb_plan = TcbAnalyzer(UsbAudioDriver).analyze([usb_session], task="record")

    i2s, usb = i2s_plan.report, usb_plan.report
    rows = [
        f"{'metric':34s} {'I2S':>8s} {'USB':>8s} {'USB/I2S':>8s}",
        f"{'full driver functions':34s} {i2s.functions_total:>8d} "
        f"{usb.functions_total:>8d} "
        f"{usb.functions_total / i2s.functions_total:>7.2f}x",
        f"{'full driver LoC':34s} {i2s.loc_total:>8d} {usb.loc_total:>8d} "
        f"{usb.loc_total / i2s.loc_total:>7.2f}x",
        f"{'minimized (record) functions':34s} {i2s.functions_kept:>8d} "
        f"{usb.functions_kept:>8d} "
        f"{usb.functions_kept / i2s.functions_kept:>7.2f}x",
        f"{'minimized (record) LoC':34s} {i2s.loc_kept:>8d} "
        f"{usb.loc_kept:>8d} {usb.loc_kept / i2s.loc_kept:>7.2f}x",
        f"{'LoC reduction by tracing':34s} "
        f"{i2s.loc_reduction_pct:>7.1f}% {usb.loc_reduction_pct:>7.1f}%",
        f"{'control transfers for the task':34s} {'0':>8s} "
        f"{usb_bus.control_transfers:>8d}",
    ]
    write_result("t8_protocols", "\n".join(rows))
    benchmark.extra_info["minimized_loc_ratio"] = usb.loc_kept / i2s.loc_kept
    benchmark(lambda: None)

    # The paper's claim, as shapes: the *ported* USB TCB would be much
    # larger, both absolutely and after minimization.
    assert usb.loc_total > 1.3 * i2s.loc_total
    assert usb.loc_kept > 1.5 * i2s.loc_kept
    # And USB cannot shed its enumeration: its reduction is weaker.
    assert usb.loc_reduction_pct < i2s.loc_reduction_pct
    assert usb_bus.control_transfers >= 7
