"""T4: energy — per-utterance consumption, secure vs baseline.

Paper Section III anticipates the TEE path costs "increased power
consumption" on a low-power device.  Reports per-utterance energy for
both configurations with per-domain breakdowns, and the model-size sweep
(smaller model → less energy, Section V's mitigation).
"""

from benchmarks.conftest import make_workload, write_result
from repro.core.baseline import BaselinePipeline
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.sim.clock import CycleDomain


def run_energy(bundle, secure: bool, n=8):
    platform = IotPlatform.create(seed=8)
    if secure:
        pipeline = SecurePipeline(platform, bundle)
    else:
        pipeline = BaselinePipeline(platform, bundle.asr, use_tls=True)
    workload = make_workload(bundle, n=n, seed=103)
    before = platform.energy.snapshot()
    run = pipeline.process(workload)
    delta = platform.energy.delta_since(before)
    return run, delta, len(workload)


def test_t4_energy(benchmark, bundle_cnn):
    rows = [f"{'config':16s} {'mJ/utt':>8s} "
            f"{'normal':>8s} {'secure':>8s} {'monitor':>8s} {'periph':>8s}"]
    info = {}
    for secure in (False, True):
        run, delta, n = run_energy(bundle_cnn, secure)
        label = "secure (ours)" if secure else "baseline"
        per_utt = delta.total_mj / n
        info[label] = per_utt
        rows.append(
            f"{label:16s} {per_utt:>8.2f} "
            f"{delta.domain_mj(CycleDomain.NORMAL_CPU) / n:>8.3f} "
            f"{delta.domain_mj(CycleDomain.SECURE_CPU) / n:>8.3f} "
            f"{delta.domain_mj(CycleDomain.MONITOR) / n:>8.3f} "
            f"{delta.domain_mj(CycleDomain.PERIPHERAL) / n:>8.3f}"
        )
    overhead = info["secure (ours)"] / info["baseline"]
    rows.append("")
    rows.append(f"energy overhead of the secure design: {overhead:.3f}x")
    write_result("t4_energy", "\n".join(rows))
    benchmark.extra_info["energy_overhead"] = overhead
    benchmark(lambda: None)

    # Shapes: secure costs more, but the same order of magnitude
    # (capture dominates; processing is the delta).
    assert 1.0 < overhead < 1.5


def test_t4_model_size_sweep(benchmark, provisioned_all):
    """Bigger models burn more secure-world energy per utterance."""
    rows = [f"{'arch':12s} {'model bytes':>12s} {'secure mJ/utt':>14s}"]
    series = []
    for arch, provisioned in provisioned_all.items():
        bundle = provisioned.bundle
        run, delta, n = run_energy(bundle, secure=True)
        secure_mj = delta.domain_mj(CycleDomain.SECURE_CPU) / n
        series.append((bundle.filter.classifier.size_bytes(), secure_mj))
        rows.append(f"{arch:12s} {bundle.filter.classifier.size_bytes():>12d} "
                    f"{secure_mj:>14.4f}")
    write_result("t4_model_sweep", "\n".join(rows))
    benchmark.extra_info["series"] = series
    benchmark(lambda: None)
