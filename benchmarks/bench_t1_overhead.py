"""T1: security ↔ performance — secure vs baseline path cost.

The trade-off the paper anticipates in Sections III/V: the TEE path pays
world switches, supplicant RPCs and slower in-enclave ML.  Reports
per-utterance processing cycles (capture excluded — audio is real-time in
both designs) for both pipelines, and sweeps the driver period size to
show switch-amortization (ablation from DESIGN.md).
"""

import numpy as np

from benchmarks.conftest import make_workload, write_result
from repro.core.baseline import BaselinePipeline
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform


def run_once(bundle, secure: bool, chunk_frames: int, n=8):
    platform = IotPlatform.create(seed=2)
    if secure:
        pipeline = SecurePipeline(platform, bundle, chunk_frames=chunk_frames)
    else:
        pipeline = BaselinePipeline(
            platform, bundle.asr, use_tls=True, chunk_frames=chunk_frames
        )
    workload = make_workload(bundle, n=n)
    run = pipeline.process(workload)
    return run, platform


def test_t1_secure_vs_baseline(benchmark, bundle_cnn):
    rows = [f"{'config':22s} {'chunk':>6s} {'proc cycles/utt':>16s} "
            f"{'ms/utt':>8s} {'switches':>9s} {'overhead':>9s}"]
    baselines = {}
    results = {}
    for chunk in (128, 256, 512):
        run_b, plat_b = run_once(bundle_cnn, secure=False, chunk_frames=chunk)
        baselines[chunk] = run_b.processing_latency_cycles().mean()
        rows.append(
            f"{'baseline':22s} {chunk:>6d} {baselines[chunk]:>16.0f} "
            f"{baselines[chunk] / 2e9 * 1e3:>8.2f} "
            f"{plat_b.machine.cpu.switch_count:>9d} {'1.00x':>9s}"
        )
    for chunk in (128, 256, 512):
        run_s, plat_s = run_once(bundle_cnn, secure=True, chunk_frames=chunk)
        mean = run_s.processing_latency_cycles().mean()
        ratio = mean / baselines[chunk]
        results[chunk] = ratio
        rows.append(
            f"{'secure (ours)':22s} {chunk:>6d} {mean:>16.0f} "
            f"{mean / 2e9 * 1e3:>8.2f} "
            f"{plat_s.machine.cpu.switch_count:>9d} {ratio:>8.2f}x"
        )
    write_result("t1_overhead", "\n".join(rows))
    benchmark.extra_info["overhead_by_chunk"] = results

    # Benchmark the hot path: one secure utterance.
    platform = IotPlatform.create(seed=3)
    pipeline = SecurePipeline(platform, bundle_cnn)
    workload = make_workload(bundle_cnn, n=4)
    pipeline.process_item(workload.items[0])  # warm-up
    items = iter(workload.items * 2000)
    benchmark(lambda: pipeline.process_item(next(items)))

    # Shape assertions: secure is slower, and overhead is single-digit-x.
    for chunk, ratio in results.items():
        assert 1.0 < ratio < 5.0, (chunk, ratio)


def test_t1_throughput(benchmark, bundle_cnn):
    """Utterances/second of simulated processing capacity, both paths."""
    rows = [f"{'config':22s} {'utt/s (processing)':>20s}"]
    info = {}
    for secure in (False, True):
        run, _ = run_once(bundle_cnn, secure=secure, chunk_frames=256)
        cycles = run.processing_latency_cycles().mean()
        rate = 2e9 / cycles
        label = "secure (ours)" if secure else "baseline"
        rows.append(f"{label:22s} {rate:>20.1f}")
        info[label] = rate
    write_result("t1_throughput", "\n".join(rows))
    benchmark.extra_info.update(info)
    benchmark(lambda: None)  # table generation was the work
    assert info["baseline"] > info["secure (ours)"]
