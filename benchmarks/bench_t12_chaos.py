"""T12: secure-world chaos — decisions survive TA panics, nothing leaks.

Runs the same workload twice on identically seeded platforms: once clean,
once with the ``chaos`` secure-fault profile (injected TA panics, secure
heap exhaustion, PTA/DMA transfer errors, sealed-storage corruption) and
the TA under supervision.  The experiment then checks the recovery
contract end to end:

* **decisions preserved** — every utterance the chaos run completed
  (i.e. did not fail closed as degraded) reaches the same transcript,
  classification and forwarding decision as the clean run;
* **zero lost committed decisions** — every forwarded decision is either
  delivered or sealed in the store-and-forward queue, at any fault rate;
* **zero raw-data leaks** — the cloud never receives a transcript the
  filter withheld in the clean run, and degraded utterances ship nothing;
* **recovery is bounded** — restart count and mean-time-to-recovery
  (from the ``tee.recovery_cycles`` histogram) are reported and MTTR
  stays within the default 50 ms recovery SLO budget.

The chaos fleet document lands in ``benchmarks/results/chaos.json`` for
the CI artifact; the text summary in ``results/t12_chaos.txt``.
"""

import json

from benchmarks.conftest import RESULTS_DIR, make_workload, write_result
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.obs.fleet import run_fleet
from repro.optee.supervise import SupervisorPolicy
from repro.sim.faults import SecureFaultConfig

SEED = 1007
UTTERANCES = 10
RECOVERY_BUDGET_CYCLES = 1.0e8  # 50 ms at the 2 GHz sim clock
FLEET_DEVICES = 4


def _run(bundle, chaos: bool):
    platform = IotPlatform.create(
        seed=SEED,
        secure_faults=SecureFaultConfig.chaos() if chaos else None,
    )
    pipeline = SecurePipeline(
        platform, bundle,
        supervisor=SupervisorPolicy() if chaos else None,
    )
    workload = make_workload(bundle, n=UTTERANCES, seed=SEED)
    try:
        run = pipeline.process(workload)
    finally:
        pipeline.close()
    return platform, pipeline, run


def test_t12_chaos_recovery(benchmark, bundle_cnn):
    platform_clean, _, clean = _run(bundle_cnn, chaos=False)
    platform, pipeline, run = benchmark.pedantic(
        lambda: _run(bundle_cnn, chaos=True), rounds=1, iterations=1,
    )
    supervisor = pipeline.supervisor
    assert supervisor is not None
    injector = platform.machine.secure_faults
    assert injector is not None and sum(injector.counts.values()) > 0, (
        "chaos profile injected no faults — the experiment is vacuous"
    )

    # Fail-closed bookkeeping first: a degraded utterance must carry the
    # suppressed-as-sensitive verdict and ship nothing.
    degraded = [r for r in run.results if r.degraded]
    for r in degraded:
        assert r.sensitive_predicted and not r.forwarded
        assert r.payload is None and r.relay_status == "suppressed"

    # Decisions preserved: every non-degraded chaos decision equals the
    # clean run's (restart + checkpoint restore changed nothing).
    assert len(run.results) == len(clean.results) == UTTERANCES
    for got, want in zip(run.results, clean.results):
        if got.degraded:
            continue
        assert got.transcript == want.transcript
        assert got.sensitive_predicted == want.sensitive_predicted
        assert got.forwarded == want.forwarded
        assert got.payload == want.payload
    preserved = (UTTERANCES - len(degraded)) / UTTERANCES

    # Zero lost committed decisions: forwarded -> delivered or sealed.
    assert run.lost_count() == 0
    assert run.sent_count() + run.queued_count() == run.forwarded_count()

    # Zero raw-data leaks: the chaos cloud saw a subset of what the clean
    # run's filter allowed out — never a withheld transcript, never
    # anything from a degraded utterance.
    allowed = {r.payload for r in clean.results if r.forwarded}
    chaos_cloud = platform.cloud.received_transcripts
    assert set(chaos_cloud) <= allowed, (
        set(chaos_cloud) - allowed
    )
    withheld = {
        r.transcript for r in clean.results if not r.forwarded
    } | {r.transcript for r in clean.results if r.degraded}
    assert not withheld & set(chaos_cloud)

    # Recovery: restarts happened and MTTR is within the SLO budget.
    counters = platform.machine.obs.metrics.counters()
    restarts = counters.get("tee.restarts", 0)
    assert restarts == supervisor.restarts > 0, (
        "chaos run should exercise at least one TA restart"
    )
    recovery = platform.machine.obs.metrics.histograms()["tee.recovery_cycles"]
    assert recovery.count == restarts
    mttr_cycles = recovery.total / recovery.count
    assert mttr_cycles <= RECOVERY_BUDGET_CYCLES, (
        f"MTTR {mttr_cycles:.0f} cycles exceeds the "
        f"{RECOVERY_BUDGET_CYCLES:.0f}-cycle budget"
    )

    # The chaos fleet profile end to end (supervised devices, merged
    # telemetry) — this is the document CI uploads.
    fleet = run_fleet(
        devices=FLEET_DEVICES, seed=7, utterances=4,
        bundle=bundle_cnn, chaos=True,
    )
    for d in fleet.devices:
        assert d.spec.secure_fault_profile == "chaos"
        assert d.summary["sent"] + d.summary["queued"] == d.summary["forwarded"]
    doc = fleet.to_doc()
    doc["chaos"] = {
        "seed": SEED,
        "utterances": UTTERANCES,
        "panics": counters.get("tee.panics", 0),
        "restarts": restarts,
        "restart_attempts": counters.get("tee.restart_attempts", 0),
        "degraded": len(degraded),
        "decisions_preserved": preserved,
        "mttr_cycles": mttr_cycles,
        "mttr_ms": mttr_cycles / 2e9 * 1e3,
        "injected_faults": injector.summary(),
    }
    (RESULTS_DIR / "chaos.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        f"injected faults     : {sum(injector.counts.values())} "
        f"({injector.counts})",
        f"TA panics           : {counters.get('tee.panics', 0)}",
        f"TA restarts         : {restarts} "
        f"({counters.get('tee.restart_attempts', 0)} attempts)",
        f"degraded utterances : {len(degraded)}/{UTTERANCES}",
        f"decisions preserved : {preserved:.0%}",
        f"MTTR                : {mttr_cycles / 2e9 * 1e3:.3f} ms "
        f"(budget {RECOVERY_BUDGET_CYCLES / 2e9 * 1e3:.0f} ms)",
        f"lost decisions      : {run.lost_count()}",
        f"raw-data leaks      : 0",
        "",
        "chaos fleet:",
        fleet.table(),
    ]
    write_result("t12_chaos", "\n".join(lines))

    benchmark.extra_info["restarts"] = restarts
    benchmark.extra_info["mttr_ms"] = mttr_cycles / 2e9 * 1e3
    benchmark.extra_info["decisions_preserved"] = preserved
    benchmark.extra_info["degraded"] = len(degraded)
