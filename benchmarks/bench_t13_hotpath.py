"""T13 — the vectorized capture hot path.

Quantifies what the block-based capture refactor buys:

* wall-clock frames/sec of the vectorized I²S PIO path against the
  word-at-a-time scalar reference (same driver, same rig), with the
  streams asserted bit-identical;
* simulated CPU cycles per chunk for both paths (the recalibrated cost
  attribution: one window read per FIFO level instead of two register
  loads per word);
* world switches per guarded camera frame, per-frame vs block mode (the
  camera branch is where batching genuinely removes GP command round
  trips — audio ``CMD_READ`` is a same-world PTA call);
* the USB audio driver's block read path (the rationale for extending
  the dead-TCB cross-check to it).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.drivers.reference import read_chunk_scalar
from repro.drivers.usb_audio_driver import UsbAudioDriver
from repro.peripherals.audio import ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.peripherals.usb import UsbAudioMicrophone, UsbBus
from repro.sim.clock import CycleDomain
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import MemoryRegion, SecurityAttr

CHUNK = 512
CHUNKS = 40


def build_i2s_rig():
    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
    driver = I2sDriver(KernelDriverHost(machine), controller, region)
    driver.probe()
    driver.pcm_open_capture(CHUNK)
    driver.trigger_start()
    return machine, driver


def _run_capture(read_fn, machine):
    """Capture CHUNKS chunks; return (pcm, wall seconds, cpu cycles)."""
    before_cpu = machine.clock.cycles_in(CycleDomain.NORMAL_CPU)
    t0 = time.perf_counter()
    chunks = [read_fn() for _ in range(CHUNKS)]
    elapsed = time.perf_counter() - t0
    cpu = machine.clock.cycles_in(CycleDomain.NORMAL_CPU) - before_cpu
    return np.concatenate(chunks), elapsed, cpu


def test_t13_hotpath(benchmark):
    # -- I2S: scalar reference vs vectorized, identical tone source ------
    machine_s, driver_s = build_i2s_rig()
    scalar_pcm, scalar_s, scalar_cpu = _run_capture(
        lambda: read_chunk_scalar(driver_s), machine_s
    )
    machine_v, driver_v = build_i2s_rig()
    vector_pcm, vector_s, vector_cpu = _run_capture(
        driver_v.read_chunk, machine_v
    )
    assert np.array_equal(scalar_pcm, vector_pcm), \
        "vectorized capture diverged from the scalar reference"

    frames = CHUNK * CHUNKS
    scalar_fps = frames / scalar_s
    vector_fps = frames / vector_s
    speedup = vector_fps / scalar_fps

    # -- camera: world switches per frame, per-frame vs block ------------
    from repro.core.camera_pipeline import (
        SecureCameraPipeline, train_person_detector,
    )
    from repro.core.platform import IotPlatform

    n_frames = 16
    detector = train_person_detector(frames_per_class=40, epochs=6)

    platform_f = IotPlatform.create(seed=11)
    pipe_f = SecureCameraPipeline(platform_f, detector)
    before = platform_f.machine.cpu.switch_count
    per_frame_run = pipe_f.run(n_frames)
    switches_per_frame = (
        (platform_f.machine.cpu.switch_count - before) / n_frames
    )
    pipe_f.close()

    platform_b = IotPlatform.create(seed=11)
    pipe_b = SecureCameraPipeline(platform_b, detector)
    before = platform_b.machine.cpu.switch_count
    block_run = pipe_b.run_block(n_frames, block=8)
    switches_per_frame_block = (
        (platform_b.machine.cpu.switch_count - before) / n_frames
    )
    pipe_b.close()

    # Same platform seed, same detector: the block path must reach the
    # same verdicts while crossing worlds far less often.
    assert [f.released for f in block_run.frames] == \
        [f.released for f in per_frame_run.frames]
    assert switches_per_frame_block < switches_per_frame / 2

    # -- USB: the block read path the dead-TCB cross-check now covers ----
    usb_machine = TrustZoneMachine()
    usb_bus = UsbBus(usb_machine.clock, UsbAudioMicrophone(ToneSource()))
    usb_driver = UsbAudioDriver(KernelDriverHost(usb_machine), usb_bus)
    usb_driver.probe()
    usb_driver.pcm_open_capture(CHUNK)
    usb_driver.trigger_start()
    t0 = time.perf_counter()
    usb_frames = sum(len(usb_driver.read_chunk()) for _ in range(8))
    usb_fps = usb_frames / (time.perf_counter() - t0)
    usb_stats = usb_driver.capture_stats()

    rows = [
        f"{'metric':38s} {'scalar':>12s} {'vectorized':>12s}",
        f"{'I2S capture frames/sec (wall)':38s} {scalar_fps:>12.0f} "
        f"{vector_fps:>12.0f}",
        f"{'I2S CPU cycles per chunk (sim)':38s} "
        f"{scalar_cpu // CHUNKS:>12d} {vector_cpu // CHUNKS:>12d}",
        f"{'capture speedup (wall)':38s} {'1.00x':>12s} {speedup:>11.2f}x",
        f"{'camera world switches / frame':38s} {switches_per_frame:>12.1f} "
        f"{switches_per_frame_block:>12.1f}",
        f"{'USB frames/sec (wall, block path)':38s} {'-':>12s} "
        f"{usb_fps:>12.0f}",
        f"{'USB short reads':38s} {'-':>12s} "
        f"{usb_stats['short_reads']:>12d}",
    ]
    write_result("t13_hotpath", "\n".join(rows))
    benchmark.extra_info["capture_speedup"] = speedup
    benchmark.extra_info["vector_frames_per_sec"] = vector_fps
    benchmark.extra_info["camera_switches_per_frame_block"] = (
        switches_per_frame_block
    )
    benchmark.pedantic(driver_v.read_chunk, rounds=1, iterations=1)

    # The refactor's acceptance bar: >=3x frames/sec on the capture path,
    # cheaper simulated CPU per chunk, full-period USB reads.
    assert speedup >= 3.0, f"capture speedup {speedup:.2f}x < 3x"
    assert vector_cpu < scalar_cpu
    assert usb_frames == CHUNK * 8
