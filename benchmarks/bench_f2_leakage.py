"""F2: privacy leakage — ours vs baseline, threshold sweep, policies.

The reproduction's headline privacy figure: the fraction of sensitive
utterances reaching the cloud / the on-device attacker / the wire, for
the conventional stack and for the paper's design, plus the classifier
threshold sweep (leak/utility trade-off curve) and the policy ablation
from DESIGN.md.
"""

from benchmarks.conftest import make_workload, write_result
from repro.cloud.auditor import LeakAuditor
from repro.core.baseline import BaselinePipeline
from repro.core.filter import FilterPolicy, SensitiveFilter
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.kernel.attacks import BufferSnoopAttack, WireEavesdropper

N = 16


def audited_run(bundle, make_pipeline, n=N):
    platform = IotPlatform.create(seed=6)
    pipeline = make_pipeline(platform)
    workload = make_workload(bundle, n=n, seed=101)
    snoop = BufferSnoopAttack(platform.machine)
    captures = []

    def attacker(p):
        captures.extend(snoop.run(p.attack_targets()).captured)

    run = pipeline.process(workload, after_each=attacker)
    auditor = LeakAuditor(workload.utterances, reference_asr=bundle.asr)
    auditor.decode_device_captures(captures)
    wire = WireEavesdropper(platform.supplicant.net).run().captured
    report = auditor.report(
        platform.cloud.received_transcripts, wire_bytes=wire
    )
    return run, report


def test_f2_leakage_comparison(benchmark, bundle_cnn):
    configs = [
        ("baseline (TLS)",
         lambda p: BaselinePipeline(p, bundle_cnn.asr, use_tls=True)),
        ("baseline (plaintext)",
         lambda p: BaselinePipeline(p, bundle_cnn.asr, use_tls=False)),
        ("secure (ours)",
         lambda p: SecurePipeline(p, bundle_cnn)),
    ]
    rows = [f"{'configuration':22s} {'cloud':>6s} {'device':>7s} "
            f"{'wire':>6s} {'utility':>8s}"]
    reports = {}
    for label, factory in configs:
        _, report = audited_run(bundle_cnn, factory)
        reports[label] = report
        rows.append(
            f"{label:22s} {report.cloud_leak_rate:>6.0%} "
            f"{report.device_leak_rate:>7.0%} {report.wire_leak_rate:>6.0%} "
            f"{report.utility_rate:>8.0%}"
        )
    write_result("f2_leakage", "\n".join(rows))
    benchmark.extra_info["cloud_leak"] = {
        k: v.cloud_leak_rate for k, v in reports.items()
    }
    benchmark(lambda: None)

    # The paper's claim, as shapes:
    assert reports["baseline (TLS)"].cloud_leak_rate == 1.0
    assert reports["baseline (TLS)"].device_leak_rate == 1.0
    assert reports["baseline (plaintext)"].wire_leak_rate == 1.0
    assert reports["secure (ours)"].cloud_leak_rate == 0.0
    assert reports["secure (ours)"].device_leak_rate == 0.0
    assert reports["secure (ours)"].wire_leak_rate == 0.0
    assert reports["secure (ours)"].utility_rate >= 0.9


def test_f2_threshold_sweep(benchmark, bundle_cnn):
    """Leak/utility ROC as the decision threshold moves."""
    rows = [f"{'threshold':>9s} {'cloud leak':>11s} {'utility':>8s}"]
    series = []
    original = bundle_cnn.filter.threshold
    try:
        for threshold in (0.05, 0.3, 0.5, 0.7, 0.95):
            bundle_cnn.filter.threshold = threshold
            _, report = audited_run(
                bundle_cnn, lambda p: SecurePipeline(p, bundle_cnn)
            )
            series.append((threshold, report.cloud_leak_rate,
                           report.utility_rate))
            rows.append(f"{threshold:>9.2f} {report.cloud_leak_rate:>11.0%} "
                        f"{report.utility_rate:>8.0%}")
    finally:
        bundle_cnn.filter.threshold = original
    write_result("f2_threshold_sweep", "\n".join(rows))
    benchmark.extra_info["series"] = series
    benchmark(lambda: None)

    # Monotone shape: leak rate cannot decrease as threshold rises.
    leaks = [s[1] for s in series]
    assert all(a <= b + 1e-9 for a, b in zip(leaks, leaks[1:]))


def test_f2_policy_ablation(benchmark, bundle_cnn):
    """Drop vs redact vs hash: all must keep sensitive text off the cloud."""
    rows = [f"{'policy':8s} {'cloud msgs':>11s} {'verbatim leaks':>15s} "
            f"{'utility':>8s}"]
    original = bundle_cnn.filter.policy
    try:
        for policy in FilterPolicy:
            bundle_cnn.filter.policy = policy
            platform = IotPlatform.create(seed=7)
            pipeline = SecurePipeline(platform, bundle_cnn)
            workload = make_workload(bundle_cnn, n=N, seed=101)
            pipeline.process(workload)
            received = platform.cloud.received_transcripts
            report = LeakAuditor(workload.utterances).report(received)
            rows.append(
                f"{policy.value:8s} {len(received):>11d} "
                f"{report.sensitive_leaked_cloud:>15d} "
                f"{report.utility_rate:>8.0%}"
            )
            assert report.cloud_leak_rate == 0.0
    finally:
        bundle_cnn.filter.policy = original
    write_result("f2_policy_ablation", "\n".join(rows))
    benchmark(lambda: None)
