"""T10: end-to-end per-stage profile — where do the cycles actually go?

Runs :func:`repro.obs.profile.collect_profile` (the engine behind the
``repro profile`` CLI) over both pipelines and publishes the span-derived
per-stage table: cycles (total + p50/p95/p99), energy, and world switches
per Fig. 1 stage, secure vs baseline.  The JSON document lands in
``benchmarks/results/profile.json`` for downstream tooling; the text table
in ``results/t10_profile.txt``.
"""

import json

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.obs.profile import collect_profile


def test_t10_stage_profile(benchmark, bundle_cnn):
    report = benchmark.pedantic(
        lambda: collect_profile(seed=11, utterances=8, bundle=bundle_cnn),
        rounds=1, iterations=1,
    )
    write_result("t10_profile", report.table())
    (RESULTS_DIR / "profile.json").write_text(
        json.dumps(report.to_doc(), indent=2) + "\n"
    )

    # Both pipelines profiled, with the Fig. 1 stages present.
    for pipeline, expected in (
        ("secure", {"capture", "asr", "classify", "filter", "relay"}),
        ("baseline", {"capture", "asr", "classify", "relay"}),
    ):
        stages = {r.stage for r in report.rows_for(pipeline)}
        assert expected <= stages, (pipeline, stages)

    # Percentiles are ordered and counts/totals are sane.
    for row in report.stages:
        assert row.count > 0
        assert 0 <= row.p50_cycles <= row.p95_cycles <= row.p99_cycles
        assert row.total_cycles >= row.p99_cycles >= 0

    # The secure path's compute stages cost more than the baseline's
    # (in-enclave ML slowdown), and only the secure path world-switches.
    secure_asr = report.stage("secure", "asr")
    baseline_asr = report.stage("baseline", "asr")
    assert secure_asr.total_cycles > baseline_asr.total_cycles
    assert report.pipelines["secure"]["world_switches"] > 0
    assert report.pipelines["baseline"]["world_switches"] == 0

    benchmark.extra_info["secure_asr_overhead"] = (
        secure_asr.total_cycles / baseline_asr.total_cycles
    )
    benchmark.extra_info["secure_energy_mj"] = (
        report.pipelines["secure"]["energy_mj"]
    )
