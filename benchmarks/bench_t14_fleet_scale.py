"""T14 — fleet co-simulation throughput (devices/sec) and shard identity.

Quantifies what the sharded fleet runner buys and guards its contract:

* wall-clock devices/sec of the fleet runner (document-reduced devices,
  mmap-backed memory regions, cached power tables), with the projected
  time for a 10k-device campaign;
* the shard-determinism property asserted hard: an N-shard run's merged
  fleet document is byte-identical to the sequential run of the same
  roster — sharding is free parallelism, never a different answer;
* per-device report size sanity (a picklable document, not a pinned
  machine graph), since O(devices) memory is what capped fleet scale
  before this refactor.

The devices/sec headline lands in ``extra_info`` and is gated in CI
against ``benchmarks/baselines/t14_fleet_baseline.json`` the same way
the T13 hot-path gate works.
"""

from __future__ import annotations

import json
import pickle
import time

from benchmarks.conftest import write_result
from repro.obs.fleet import FleetReport, run_fleet

DEVICES = 24
UTTERANCES = 2
SHARD_DEVICES = 8
SHARDS = 4


def test_t14_fleet_scale(benchmark, bundle_cnn):
    # -- throughput: one sequential sweep over a mid-sized roster --------
    t0 = time.perf_counter()
    seq = run_fleet(
        devices=DEVICES, seed=7, utterances=UTTERANCES, bundle=bundle_cnn
    )
    elapsed = time.perf_counter() - t0
    devices_per_sec = DEVICES / elapsed
    projected_10k_min = 10_000 / devices_per_sec / 60.0

    # -- shard identity: same roster prefix, 4 workers vs in-process -----
    # device_specs(n) is a prefix of device_specs(m>n), so the sequential
    # reference for the sharded run is just the first rows of the sweep.
    t0 = time.perf_counter()
    sharded = run_fleet(
        devices=SHARD_DEVICES, seed=7, utterances=UTTERANCES,
        bundle=bundle_cnn, shards=SHARDS,
    )
    sharded_s = time.perf_counter() - t0
    reference = FleetReport(seed=7, devices=seq.devices[:SHARD_DEVICES])
    seq_doc = json.dumps(reference.to_doc(), sort_keys=True)
    shard_doc = json.dumps(sharded.to_doc(), sort_keys=True)
    assert seq_doc == shard_doc, \
        "sharded fleet document diverged from the sequential run"
    merged_equal = json.dumps(
        reference.merged_registry().to_doc(), sort_keys=True
    ) == json.dumps(sharded.merged_registry().to_doc(), sort_keys=True)
    assert merged_equal, "sharded merged registry diverged"

    # -- document size: reports must stay cheap to hold and to pickle ----
    report_kb = len(pickle.dumps(seq.devices[0])) / 1024.0

    fleet = seq.to_doc()["fleet"]
    rows = [
        f"{'metric':38s} {'value':>14s}",
        f"{'devices simulated':38s} {DEVICES:>14d}",
        f"{'utterances (fleet total)':38s} {fleet['utterances']:>14d}",
        f"{'devices/sec (wall)':38s} {devices_per_sec:>14.2f}",
        f"{'projected 10k-device run (min)':38s} {projected_10k_min:>14.1f}",
        f"{'sharded == sequential doc':38s} {'yes':>14s}",
        f"{'sharded run, {} devices / {} shards (s)'.format(SHARD_DEVICES, SHARDS):38s}"
        f" {sharded_s:>14.2f}",
        f"{'device report pickle (KiB)':38s} {report_kb:>14.1f}",
        f"{'fleet relay success':38s} {fleet['relay_success_rate']:>14.2%}",
    ]
    write_result("t14_fleet_scale", "\n".join(rows))
    benchmark.extra_info["devices_per_sec"] = devices_per_sec
    benchmark.extra_info["projected_10k_minutes"] = projected_10k_min
    benchmark.extra_info["shard_doc_identical"] = True
    benchmark.extra_info["device_report_kib"] = report_kb
    benchmark.pedantic(
        lambda: run_fleet(
            devices=1, seed=7, utterances=UTTERANCES, bundle=bundle_cnn
        ),
        rounds=1, iterations=1,
    )

    # The refactor's acceptance bar: a 10k-device campaign must be a
    # lunch-break job, not an overnight one, and reports must be small.
    assert devices_per_sec >= 2.0, \
        f"fleet throughput {devices_per_sec:.2f} devices/sec < 2.0"
    assert report_kb < 256.0, f"device report {report_kb:.0f} KiB too large"
