"""A1: design-choice ablations called out in DESIGN.md.

Three sensitivity analyses on the secure pipeline:

* **World-switch cost** — the fixed hardware price of the TEE boundary;
  sweeping it (0.5×–4×) shows how strongly the end-to-end overhead
  depends on the platform's switch latency.
* **PIO vs DMA capture** — the secure driver can drain the I²S FIFO via
  register reads or via (secure) DMA; DMA trades setup cost for per-word
  CPU savings.
* **Per-utterance vs continuous capture** — the deployment-realistic
  stream mode adds an in-enclave VAD; its cost and decision-equivalence
  are measured against the per-utterance API.
"""

import numpy as np

from benchmarks.conftest import make_workload, write_result
from repro.core.baseline import BaselinePipeline
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.sim.clock import CycleDomain
from repro.tz.costs import CostModel
from repro.tz.machine import MachineConfig


def test_a1_world_switch_sensitivity(benchmark, bundle_cnn):
    base = CostModel()
    rows = [f"{'switch cost':>12s} {'proc cycles/utt':>16s} {'overhead':>9s}"]
    series = []
    for factor in (0.5, 1.0, 2.0, 4.0):
        costs = CostModel(
            world_switch_cycles=int(base.world_switch_cycles * factor),
            cache_maintenance_cycles=int(
                base.cache_maintenance_cycles * factor
            ),
        )
        config = MachineConfig(costs=costs)
        platform = IotPlatform.create(machine_config=config)
        secure = SecurePipeline(platform, bundle_cnn)
        run_s = secure.process(make_workload(bundle_cnn, n=6, seed=111))

        platform_b = IotPlatform.create(machine_config=MachineConfig(costs=costs))
        base_p = BaselinePipeline(platform_b, bundle_cnn.asr, use_tls=True)
        run_b = base_p.process(make_workload(bundle_cnn, n=6, seed=111))

        mean_s = run_s.processing_latency_cycles().mean()
        ratio = mean_s / run_b.processing_latency_cycles().mean()
        series.append((factor, ratio))
        rows.append(f"{factor:>11.1f}x {mean_s:>16.0f} {ratio:>8.2f}x")
    write_result("a1_switch_sensitivity", "\n".join(rows))
    benchmark.extra_info["series"] = series
    benchmark(lambda: None)

    # Overhead must grow monotonically with the switch cost.
    ratios = [r for _, r in series]
    assert all(a <= b + 1e-6 for a, b in zip(ratios, ratios[1:]))


def test_a1_pio_vs_dma(benchmark, bundle_cnn):
    """Secure-world CPU cycles per chunk, PIO vs DMA drain."""
    from repro.drivers.hosting import SecureDriverHost
    from repro.drivers.i2s_driver import I2sDriver
    from repro.optee.pta import PtaContext, PseudoTa
    from repro.tz.worlds import World

    rows = [f"{'mode':6s} {'cpu cycles/chunk':>17s} {'dma cycles/chunk':>17s}"]
    measured = {}
    for mode in ("pio", "dma"):
        platform = IotPlatform.create(seed=12)
        pta = PseudoTa()
        ctx = PtaContext(platform.tee, pta)
        host = SecureDriverHost(ctx)
        driver = I2sDriver(host, platform.i2s_controller, platform.i2s_region)
        machine = platform.machine
        machine.cpu._set_world(World.SECURE)
        try:
            machine.secure_peripheral(platform.i2s_region)
            driver.probe()
            if mode == "dma":
                driver.set_capture_mode("dma")
            driver.pcm_open_capture(512)
            driver.trigger_start()
            cpu_before = machine.clock.cycles_in(CycleDomain.SECURE_CPU)
            dma_before = machine.clock.cycles_in(CycleDomain.DMA)
            for _ in range(4):
                driver.read_chunk()
            cpu = (machine.clock.cycles_in(CycleDomain.SECURE_CPU)
                   - cpu_before) // 4
            dma = (machine.clock.cycles_in(CycleDomain.DMA) - dma_before) // 4
        finally:
            machine.cpu._set_world(World.NORMAL)
        measured[mode] = cpu
        rows.append(f"{mode:6s} {cpu:>17d} {dma:>17d}")
    write_result("a1_pio_vs_dma", "\n".join(rows))
    benchmark.extra_info.update(measured)
    benchmark(lambda: None)
    assert measured["dma"] < measured["pio"]


def test_a1_continuous_vs_per_utterance(benchmark, bundle_cnn):
    """The VAD stream mode must match per-utterance decisions at a small
    added cost."""
    workload_args = dict(n=6, seed=113)

    platform_a = IotPlatform.create(seed=13)
    per_utt = SecurePipeline(platform_a, bundle_cnn)
    run_a = per_utt.process(make_workload(bundle_cnn, **workload_args))

    platform_b = IotPlatform.create(seed=13)
    stream = SecurePipeline(platform_b, bundle_cnn)
    run_b = stream.process_continuous(make_workload(bundle_cnn, **workload_args))

    rows = [f"{'mode':16s} {'decisions':>10s} {'forwarded':>10s} "
            f"{'vad cycles':>11s} {'smc calls':>10s}"]
    rows.append(
        f"{'per-utterance':16s} {len(run_a):>10d} "
        f"{run_a.forwarded_count():>10d} "
        f"{run_a.stage_cycles.get('vad', 0):>11d} "
        f"{platform_a.machine.monitor.smc_count:>10d}"
    )
    rows.append(
        f"{'continuous+vad':16s} {len(run_b):>10d} "
        f"{run_b.forwarded_count():>10d} "
        f"{run_b.stage_cycles.get('vad', 0):>11d} "
        f"{platform_b.machine.monitor.smc_count:>10d}"
    )
    write_result("a1_continuous", "\n".join(rows))
    benchmark(lambda: None)

    assert len(run_b) == len(run_a)
    decisions_a = [(r.utterance.text, r.forwarded) for r in run_a.results]
    decisions_b = [(r.utterance.text, r.forwarded) for r in run_b.results]
    assert decisions_a == decisions_b
    # Stream mode crosses the monitor fewer times (one SMC for the batch).
    assert (platform_b.machine.monitor.smc_count
            < platform_a.machine.monitor.smc_count)
