"""F3: accidental activation — the paper's motivating incident class.

§I opens with the 2019 leaks: assistant recordings reaching the provider,
"part of these recordings activated accidentally by users."  Content
filtering alone cannot stop that class — an overheard *benign* side
conversation passes any sensitivity test, yet was never meant to leave
the house.  This experiment runs a household mix (50% addressed to the
assistant, 50% overheard) through three configurations and reports the
two leak channels separately.
"""

from benchmarks.conftest import write_result
from repro.core.baseline import BaselinePipeline
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.wakeword import WakeWordGate
from repro.core.workload import UtteranceWorkload
from repro.ml.dataset import UtteranceGenerator
from repro.sim.rng import SimRng

N = 20


def household_workload(bundle):
    corpus = UtteranceGenerator(SimRng(211, "f3")).generate(
        N, sensitive_fraction=0.5, addressed_fraction=0.5,
    )
    return UtteranceWorkload.from_corpus(corpus, bundle.vocoder)


def run_config(bundle, kind):
    """Returns (sensitive_leak_rate, accidental_leak_rate).

    Accidental leakage is counted at *decision* level (which captures were
    forwarded) rather than by content matching: with a small template
    universe an overheard utterance can be text-identical to a
    legitimately delivered addressed command, which content matching
    would mis-score as a leak.
    """
    platform = IotPlatform.create(seed=15)
    workload = household_workload(bundle)
    original_gate = bundle.gate
    try:
        if kind == "baseline":
            pipeline = BaselinePipeline(platform, bundle.asr, use_tls=True)
        elif kind == "content-filter":
            bundle.gate = None
            pipeline = SecurePipeline(platform, bundle)
        else:  # gated
            bundle.gate = WakeWordGate()
            pipeline = SecurePipeline(platform, bundle)
        run = pipeline.process(workload)
    finally:
        bundle.gate = original_gate

    sensitive = [r for r in run.results if r.utterance.sensitive]
    overheard = [r for r in run.results if not r.utterance.addressed]
    sensitive_leak = (
        sum(r.forwarded for r in sensitive) / len(sensitive)
        if sensitive else 0.0
    )
    accidental_leak = (
        sum(r.forwarded for r in overheard) / len(overheard)
        if overheard else 0.0
    )
    return sensitive_leak, accidental_leak


def test_f3_accidental_activation(benchmark, bundle_cnn):
    rows = [f"{'configuration':26s} {'sensitive leak':>15s} "
            f"{'accidental leak':>16s}"]
    results = {}
    for kind, label in (
        ("baseline", "baseline (no filter)"),
        ("content-filter", "secure, content filter"),
        ("gated", "secure, gate + filter"),
    ):
        sensitive_leak, accidental_leak = run_config(bundle_cnn, kind)
        results[kind] = (sensitive_leak, accidental_leak)
        rows.append(
            f"{label:26s} {sensitive_leak:>15.0%} {accidental_leak:>16.0%}"
        )
    write_result("f3_accidental", "\n".join(rows))
    benchmark.extra_info["accidental_leak"] = {
        k: v[1] for k, v in results.items()
    }
    benchmark(lambda: None)

    # The incident-class shapes:
    assert results["baseline"][1] == 1.0
    # Content filtering stops sensitive content but NOT benign overheard
    # chatter — the 2019 class survives it.
    assert results["content-filter"][0] == 0.0
    assert results["content-filter"][1] > 0.0
    # The wake-word gate closes it entirely.
    assert results["gated"][0] == 0.0
    assert results["gated"][1] == 0.0