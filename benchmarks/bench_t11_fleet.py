"""T11: fleet telemetry — merged histograms must equal the ground truth.

Runs a simulated fleet (varied seeds, workload sizes and network fault
profiles per device), merges the per-device telemetry, and checks the
aggregation math the operational tier stands on: fleet quantiles from
:meth:`BucketHistogram.merge` must equal the quantiles of the
concatenated per-device latency streams (exactly while under the sample
cap, and within one bucket's relative error in general), and the merged
counters must equal the per-device sums.  The fleet document lands in
``benchmarks/results/fleet.json`` for the CI artifact; the text table in
``results/t11_fleet.txt``.
"""

import json
import math

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.obs.fleet import run_fleet

DEVICES = 6


def test_t11_fleet_telemetry(benchmark, bundle_cnn):
    report = benchmark.pedantic(
        lambda: run_fleet(devices=DEVICES, seed=7, utterances=4,
                          bundle=bundle_cnn),
        rounds=1, iterations=1,
    )
    write_result("t11_fleet", report.table())
    (RESULTS_DIR / "fleet.json").write_text(
        json.dumps(report.to_doc(), indent=2) + "\n"
    )

    assert len(report.devices) == DEVICES
    # Devices differ: rotated fault profiles and varied workload sizes.
    assert len({d.spec.fault_profile for d in report.devices}) > 1
    assert len({d.spec.seed for d in report.devices}) == DEVICES

    # Merged quantiles vs the concatenated ground-truth stream.
    merged = report.latency_hist
    concat = sorted(lat for d in report.devices for lat in d.latencies)
    assert merged.count == len(concat)
    assert merged.min == concat[0] and merged.max == concat[-1]
    assert merged.total == sum(concat)
    for q in (0.5, 0.95, 0.99):
        estimate = merged.quantile(q)
        if merged.exact:
            # Under the sample cap the merge kept every sample, so the
            # quantile IS the concatenated stream's (interpolated).
            rank = q * (len(concat) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(concat) - 1)
            frac = rank - lo
            expected = concat[lo] * (1.0 - frac) + concat[hi] * frac
            assert estimate == expected, (q, expected, estimate)
        else:
            # Bucket mode: nearest-rank exact bracketed within one
            # bucket's relative error.
            rank = max(1, math.ceil(q * len(concat)))
            exact = concat[rank - 1]
            assert exact <= estimate * (1 + 1e-12), (q, exact, estimate)
            assert estimate <= exact * merged.gamma * (1 + 1e-12), (
                q, exact, estimate,
            )

    # Merged registry counters equal the per-device sums.
    fleet_metrics = report.merged_registry()
    assert fleet_metrics.counter("fleet.utterances").value == len(concat)
    assert fleet_metrics.counter("fleet.relay.sent").value == sum(
        d.summary["sent"] for d in report.devices
    )
    hist = fleet_metrics.histogram("fleet.e2e_latency_cycles")
    assert hist.count == len(concat)

    # Nothing got lost at any fault profile, and the wire stayed honest:
    # every forwarded decision is either delivered or queued.
    for d in report.devices:
        forwarded = d.summary["forwarded"]
        assert d.summary["sent"] + d.summary["queued"] == forwarded

    doc = report.to_doc()
    assert doc["fleet"]["devices"] == DEVICES
    assert doc["fleet"]["latency_p50_cycles"] <= doc["fleet"]["latency_p99_cycles"]
    benchmark.extra_info["fleet_p99_ms"] = (
        doc["fleet"]["latency_p99_cycles"] / 2e9 * 1e3
    )
    benchmark.extra_info["relay_success_rate"] = (
        doc["fleet"]["relay_success_rate"]
    )
