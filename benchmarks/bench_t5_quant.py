"""T5: quantization ablation — fp32 vs int8 per architecture.

Section V's mitigation for scarce TEE memory ("smaller ML models"),
quantified: weight bytes, accuracy delta, and in-TEE inference cycles
for the fp32 and int8 variants of each architecture.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.ml.metrics import BinaryMetrics
from repro.ml.models import build_classifier
from repro.ml.quantize import quantize_classifier
from repro.tz.costs import DEFAULT_COSTS


def fresh_copy(provisioned, arch):
    """Clone the trained model so quantization does not disturb fixtures."""
    bundle = provisioned.bundle
    tok = bundle.filter.tokenizer
    clone = build_classifier(
        arch, tok.vocab_size, tok.max_len, np.random.default_rng(0)
    )
    clone.deserialize(bundle.filter.classifier.serialize())
    return clone, tok, provisioned.test_corpus


def test_t5_quantization(benchmark, provisioned_all):
    rows = [f"{'model':18s} {'bytes':>8s} {'ratio':>6s} {'acc':>7s} "
            f"{'acc delta':>10s} {'us/inf':>7s} {'speedup':>8s}"]
    info = {}
    for arch, provisioned in provisioned_all.items():
        model, tok, test_corpus = fresh_copy(provisioned, arch)
        ids = tok.encode_batch(test_corpus.texts)
        labels = np.array(test_corpus.labels)

        acc_fp32 = float((model.predict(ids) == labels).mean())
        cycles_fp32 = DEFAULT_COSTS.ml_inference_cycles(
            model.macs_per_inference(), secure=True, int8=False
        )
        bytes_fp32 = model.size_bytes()

        quant = quantize_classifier(model)
        acc_int8 = float((quant.predict(ids) == labels).mean())
        cycles_int8 = DEFAULT_COSTS.ml_inference_cycles(
            quant.macs_per_inference(), secure=True, int8=True
        )

        rows.append(
            f"{arch:18s} {bytes_fp32:>8d} {'1.00':>6s} {acc_fp32:>7.3f} "
            f"{'—':>10s} {cycles_fp32 / 2e9 * 1e6:>7.2f} {'1.00x':>8s}"
        )
        rows.append(
            f"{arch + '-int8':18s} {quant.size_bytes():>8d} "
            f"{bytes_fp32 / quant.size_bytes():>5.2f}x {acc_int8:>7.3f} "
            f"{acc_int8 - acc_fp32:>+10.3f} "
            f"{cycles_int8 / 2e9 * 1e6:>7.2f} "
            f"{cycles_fp32 / cycles_int8:>7.2f}x"
        )
        info[arch] = {
            "size_ratio": bytes_fp32 / quant.size_bytes(),
            "acc_delta": acc_int8 - acc_fp32,
        }

        # Shapes: ~4x smaller, accuracy within 5 points.
        assert info[arch]["size_ratio"] > 3.5
        assert abs(info[arch]["acc_delta"]) < 0.05

    write_result("t5_quantization", "\n".join(rows))
    benchmark.extra_info.update(info)

    # Benchmark: int8 inference wall time (the deployed configuration).
    model, tok, _ = fresh_copy(provisioned_all["cnn"], "cnn")
    quant = quantize_classifier(model)
    ids = tok.encode_batch(["the password is four two seven one"])
    benchmark(lambda: quant.predict_proba(ids))
