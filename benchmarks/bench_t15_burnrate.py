"""T15 — adaptive telemetry sampling vs burn-rate detection latency.

Quantifies the observability pillar's three-way trade and guards its
contracts:

* telemetry bytes shipped per device — the metrics registry JSONL
  (including the snapshot ring), the latency samples, and the kept trace
  spans — unsampled vs ``--sample-rate auto``, with the reduction ratio
  gated in CI;
* the fleet p99 latency error that weighted 1-in-k sampling introduces,
  asserted within one DDSketch bucket of the unsampled estimate (the
  unbiasedness contract of the weighted merge);
* decision identity: the sampled fleet's per-device decision fields are
  byte-identical to the unsampled fleet's — sampling drops telemetry,
  never behaviour;
* burn-rate detection latency on a synthetic degrading event stream, at
  snapshot ring cadence 1 and 8 — the simulated hours between a relay
  brown-out starting and the multi-window alarm firing, which is the
  cost side of the bytes saved by a coarser ring.

The headline numbers land in ``extra_info`` and are gated in CI against
``benchmarks/baselines/t15_burnrate_baseline.json`` the same way the
T13/T14 gates work.
"""

from __future__ import annotations

import json
import math

from benchmarks.conftest import write_result
from repro.obs.export import to_jsonl
from repro.obs.fleet import LATENCY_METRIC, run_fleet
from repro.obs.health import SloRule, evaluate_burn_rates
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import DEFAULT_FREQ_HZ

DEVICES = 4
#: Long enough to amortize the registry's fixed per-metric doc lines —
#: the telemetry floor that no sampler can remove — so the measured
#: reduction reflects the per-utterance stream a deployment actually
#: ships, not the one-time schema overhead.
UTTERANCES = 32

#: Synthetic degradation timeline: one relay event every 2 simulated
#: seconds; a brown-out that fails 7 of every 10 deliveries starts at
#: event 600 (20 simulated minutes in).
EVENT_PERIOD_S = 2.0
ONSET_EVENT = 600
TOTAL_EVENTS = 2400

_BURN_RULE = SloRule(
    name="relay_success",
    metric="fleet.relay.sent",
    op=">=",
    threshold=0.9,
    denominator="fleet.relay.forwarded",
    budget_per_hour=60.0,
)


def _telemetry_bytes(dev) -> int:
    """Bytes this device ships off-box: registry (with snapshot ring),
    latency samples, and kept trace spans."""
    n = len(to_jsonl(dev.registry).encode())
    n += len(json.dumps(dev.latencies).encode())
    n += sum(
        len(json.dumps(doc, sort_keys=True).encode())
        for doc in dev.trace_spans
    )
    return n


def _decision_fields(report) -> str:
    """The per-device decision projection — everything that is behaviour
    rather than telemetry volume."""
    keys = ("device", "utterances", "accuracy", "forwarded", "sent",
            "queued", "relay_attempts", "degraded", "retries")
    rows = [
        {k: d.to_doc()[k] for k in keys} for d in report.devices
    ]
    return json.dumps(rows, sort_keys=True)


def _bucket_index(value: float, gamma: float) -> int:
    """The DDSketch bucket a positive value lands in."""
    return math.ceil(math.log(value) / math.log(gamma))


def _detection_hours(cadence: int) -> tuple[float, int]:
    """Simulated hours from brown-out onset to the burn alarm firing.

    Replays the synthetic event stream into a registry, stamping a
    snapshot every ``cadence`` events, and evaluates the multi-window
    burn rate after each stamp.  Returns (hours-to-detect, ring bytes).
    """
    registry = MetricsRegistry()
    cycle_step = int(EVENT_PERIOD_S * DEFAULT_FREQ_HZ)
    onset_cycle = ONSET_EVENT * cycle_step
    detected_cycle = None
    for i in range(TOTAL_EVENTS):
        registry.inc("fleet.relay.forwarded", 1)
        # Brown-out: 3-in-10 deliveries succeed after onset.
        if i < ONSET_EVENT or i % 10 < 3:
            registry.inc("fleet.relay.sent", 1)
        cycle = (i + 1) * cycle_step
        if (i + 1) % cadence == 0:
            registry.record_snapshot(cycle)
            if detected_cycle is None and cycle > onset_cycle:
                (burn,) = evaluate_burn_rates(
                    registry, [_BURN_RULE], window_hours=0.5,
                    freq_hz=DEFAULT_FREQ_HZ, factor=6.0,
                )
                if burn.firing:
                    detected_cycle = cycle
    assert detected_cycle is not None, \
        f"burn alarm never fired at ring cadence {cadence}"
    ring_bytes = len(
        json.dumps([s.to_doc() for s in registry.snapshots]).encode()
    )
    hours = (detected_cycle - onset_cycle) / DEFAULT_FREQ_HZ / 3600.0
    return hours, ring_bytes


def test_t15_burnrate(benchmark, bundle_cnn):
    # -- telemetry volume: unsampled vs --sample-rate auto ---------------
    kw = dict(devices=DEVICES, seed=7, utterances=UTTERANCES,
              bundle=bundle_cnn, collect_traces=True)
    full = run_fleet(sample_rate=1, **kw)
    auto = run_fleet(sample_rate="auto", **kw)
    full_bytes = sum(_telemetry_bytes(d) for d in full.devices) / DEVICES
    auto_bytes = sum(_telemetry_bytes(d) for d in auto.devices) / DEVICES
    reduction = full_bytes / auto_bytes

    # -- decisions are byte-identical under sampling ---------------------
    assert _decision_fields(full) == _decision_fields(auto), \
        "sampling changed device decisions"

    # -- quantile error stays within one bucket --------------------------
    full_hist = full.merged_registry().histograms()[LATENCY_METRIC]
    auto_hist = auto.merged_registry().histograms()[LATENCY_METRIC]
    p99_full = full_hist.quantile(0.99)
    p99_auto = auto_hist.quantile(0.99)
    bucket_err = abs(
        _bucket_index(p99_full, full_hist.gamma)
        - _bucket_index(p99_auto, auto_hist.gamma)
    )

    # -- burn-rate detection latency vs ring cadence ---------------------
    detect_fine_h, ring_fine_b = _detection_hours(cadence=1)
    detect_coarse_h, ring_coarse_b = _detection_hours(cadence=8)

    rows = [
        f"{'metric':42s} {'value':>14s}",
        f"{'devices x utterances':42s} "
        f"{'{}x{}'.format(DEVICES, UTTERANCES):>14s}",
        f"{'telemetry bytes/device (unsampled)':42s} {full_bytes:>14.0f}",
        f"{'telemetry bytes/device (auto)':42s} {auto_bytes:>14.0f}",
        f"{'bytes reduction (x)':42s} {reduction:>14.1f}",
        f"{'fleet p99 (unsampled, cycles)':42s} {p99_full:>14.3g}",
        f"{'fleet p99 (auto, cycles)':42s} {p99_auto:>14.3g}",
        f"{'p99 bucket error':42s} {bucket_err:>14d}",
        f"{'decisions identical under sampling':42s} {'yes':>14s}",
        f"{'burn detection, ring cadence 1 (sim h)':42s}"
        f" {detect_fine_h:>14.3f}",
        f"{'burn detection, ring cadence 8 (sim h)':42s}"
        f" {detect_coarse_h:>14.3f}",
        f"{'ring bytes, cadence 1':42s} {ring_fine_b:>14d}",
        f"{'ring bytes, cadence 8':42s} {ring_coarse_b:>14d}",
    ]
    write_result("t15_burnrate", "\n".join(rows))
    benchmark.extra_info["bytes_per_device_unsampled"] = full_bytes
    benchmark.extra_info["bytes_per_device_auto"] = auto_bytes
    benchmark.extra_info["bytes_reduction"] = reduction
    benchmark.extra_info["p99_bucket_error"] = bucket_err
    benchmark.extra_info["detect_hours_cadence1"] = detect_fine_h
    benchmark.extra_info["detect_hours_cadence8"] = detect_coarse_h
    benchmark.pedantic(
        lambda: _detection_hours(cadence=8), rounds=1, iterations=1
    )

    # The pillar's acceptance bar: auto sampling must ship >=5x fewer
    # telemetry bytes per device without moving the fleet quantile more
    # than one bucket, and a coarser ring may delay — never lose — the
    # burn alarm.
    assert reduction >= 5.0, \
        f"auto sampling only reduced telemetry {reduction:.1f}x (< 5x)"
    assert bucket_err <= 1, \
        f"sampled p99 moved {bucket_err} buckets from unsampled"
    assert detect_coarse_h >= detect_fine_h, \
        "coarser ring cannot detect earlier than the fine ring"
    assert detect_coarse_h <= 1.0, \
        f"burn alarm took {detect_coarse_h:.2f} simulated hours (> 1.0)"
